// Schedule IR: the bridge between algorithms and executors.
//
// An algorithm compiles (op, p, root, n, k) into one step program per rank.
// Steps operate on two buffers per rank:
//   input  — the rank's read-only contribution (size input_bytes()),
//   output — the n-byte workspace/result buffer.
// Every send/recv references a byte range of *output*; the only input access
// is the CopyInput step. This tiny IR is sufficient for all the paper's
// algorithms and keeps both executors (threaded + simulated) trivial to
// verify.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/coll_params.hpp"

namespace gencoll::core {

enum class StepKind {
  kCopyInput,   ///< output[dst_off .. dst_off+bytes) = input[src_off ..)
  kSend,        ///< send output[off ..) to peer with tag
  kSendInput,   ///< send input[src_off ..) to peer with tag (alltoall-style
                ///< exchanges where the region's output slot is overwritten
                ///< by an incoming message)
  kRecv,        ///< receive bytes into output[off ..)
  kRecvReduce,  ///< receive bytes, combine element-wise into output[off ..)
};

struct Step {
  StepKind kind = StepKind::kSend;
  int peer = -1;            ///< kSend/kRecv/kRecvReduce
  int tag = 0;              ///< message matching tag
  std::size_t off = 0;      ///< byte offset in output (dst for kCopyInput)
  std::size_t bytes = 0;
  std::size_t src_off = 0;  ///< kCopyInput only: byte offset in input
};

/// One rank's ordered step program.
struct RankProgram {
  std::vector<Step> steps;

  void copy_input(std::size_t src_off, std::size_t dst_off, std::size_t bytes);
  void send(int peer, int tag, std::size_t off, std::size_t bytes);
  void send_input(int peer, int tag, std::size_t src_off, std::size_t bytes);
  void recv(int peer, int tag, std::size_t off, std::size_t bytes);
  void recv_reduce(int peer, int tag, std::size_t off, std::size_t bytes);
};

/// Metadata attached to a two-level composed schedule (core/hierarchy.hpp).
/// Ranks are grouped into consecutive blocks of `group_size`; each rank's
/// step program is three contiguous phases:
///   [0, intra_end)           intra-group fan-in (group members -> leader),
///   [intra_end, leader_end)  the leader-level inter-group kernel (empty for
///                            non-leader ranks),
///   [leader_end, end)        intra-group fan-out / final root hop.
/// The flat program is complete on its own (any executor can run it over the
/// mailbox); executors that recognise `intra_shm` may replace the intra
/// phases with shared-segment copies (runtime/shm_group.hpp).
struct HierInfo {
  int group_size = 1;
  Algorithm inter_alg = Algorithm::kRecursiveMultiplying;
  int inter_k = 2;
  bool intra_shm = true;
  std::vector<std::size_t> intra_end;   ///< per-rank phase boundary
  std::vector<std::size_t> leader_end;  ///< per-rank phase boundary
};

struct Schedule {
  CollParams params;
  std::string name;                 ///< algorithm name + radix, for reports
  std::vector<RankProgram> ranks;   ///< size params.p
  std::optional<HierInfo> hier;     ///< set for composed two-level schedules

  [[nodiscard]] std::size_t total_steps() const;
  /// Sum of bytes over all kSend steps (network traffic of the collective).
  [[nodiscard]] std::size_t total_send_bytes() const;
  /// Human-readable dump (debugging aid).
  [[nodiscard]] std::string dump() const;
};

const char* step_kind_name(StepKind kind);

}  // namespace gencoll::core
