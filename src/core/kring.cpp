// Ring and k-ring algorithms (paper §V). k=1 is the classic ring.
//
// K-ring breaks the p-process ring into p/k groups of k consecutive ranks.
// Each "phase" circulates one group's worth of blocks inside every group
// ((k-1) intra rounds on the fast intranode links when k equals the
// processes-per-node) and then forwards it to the next group in a single
// inter-group round — g(k-1) intra + (g-1) inter = p-1 total rounds, with
// inter-group traffic reduced from 2n(p-1)/p to 2n(p-k)/p (paper Eq. 13).
#include <string>

#include "core/algorithms.hpp"
#include "core/algorithms_internal.hpp"
#include "core/partition.hpp"

namespace gencoll::core {

namespace {

void require_op(const CollParams& params, CollOp op) {
  check_params(params);
  if (params.op != op) {
    throw std::invalid_argument("schedule builder called with mismatched op");
  }
}

void require_kring_radix(const CollParams& params) {
  if (params.k < 1 || params.k > params.p) {
    throw unsupported_params("k-ring", params, "requires 1 <= k <= p");
  }
}

Schedule make_schedule(const CollParams& params, const std::string& kernel) {
  Schedule sched;
  sched.params = params;
  sched.name = kernel + "(k=" + std::to_string(params.k) + ")";
  sched.ranks.resize(static_cast<std::size_t>(params.p));
  return sched;
}

constexpr int kPhase0Tag = 0;
constexpr int kPhase1Tag = internal::kTagPhaseStride;

/// Ring reduce-scatter: after p-1 rounds rank r owns the fully reduced block
/// (r+1) mod p — the "partitions offset by 1" the paper notes for allreduce.
void append_ring_reduce_scatter(Schedule& sched, int tag_base) {
  const CollParams& pr = sched.params;
  const int p = pr.p;
  for (int t = 0; t < p - 1; ++t) {
    const int tag = tag_base + t * internal::kTagRoundStride;
    for (int r = 0; r < p; ++r) {
      RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
      const int right = (r + 1) % p;
      const int left = (r - 1 + p) % p;
      const int send_block = ((r - t) % p + p) % p;
      const int recv_block = ((r - t - 1) % p + p) % p;
      const Seg ss = seg_of_blocks(pr.count, pr.elem_size, p, send_block, send_block + 1);
      const Seg rs = seg_of_blocks(pr.count, pr.elem_size, p, recv_block, recv_block + 1);
      prog.send(right, tag, ss.off, ss.len);
      prog.recv_reduce(left, tag, rs.off, rs.len);
    }
  }
}

}  // namespace

Schedule build_kring_allgather(const CollParams& params) {
  require_op(params, CollOp::kAllgather);
  require_kring_radix(params);
  Schedule sched = make_schedule(params, params.k == 1 ? "ring_allgather" : "kring_allgather");
  for (int r = 0; r < params.p; ++r) {
    const Seg own = seg_of_blocks(params.count, params.elem_size, params.p, r, r + 1);
    sched.ranks[static_cast<std::size_t>(r)].copy_input(0, own.off, own.len);
  }
  internal::append_kring_allgather_rounds(sched, params.k, /*rot=*/0, kPhase0Tag);
  return sched;
}

Schedule build_kring_allreduce(const CollParams& params) {
  require_op(params, CollOp::kAllreduce);
  require_kring_radix(params);
  Schedule sched = make_schedule(params, params.k == 1 ? "ring_allreduce" : "kring_allreduce");
  for (auto& prog : sched.ranks) prog.copy_input(0, 0, params.nbytes());
  append_ring_reduce_scatter(sched, kPhase0Tag);
  // After reduce-scatter, rank r owns block (r+1) mod p; rotate the
  // allgather's vrank space by p-1 so vrank b (the owner of block b) maps to
  // real rank (b + p - 1) mod p = b - 1.
  internal::append_kring_allgather_rounds(sched, params.k, /*rot=*/params.p - 1,
                                          kPhase1Tag);
  return sched;
}

Schedule build_kring_bcast(const CollParams& params) {
  require_op(params, CollOp::kBcast);
  require_kring_radix(params);
  Schedule sched = make_schedule(params, params.k == 1 ? "ring_bcast" : "kring_bcast");
  // Scatter-allgather (the standard large-message bcast): binomial scatter
  // of p absolute-offset blocks in vrank space, then k-ring allgather.
  sched.ranks[static_cast<std::size_t>(params.root)].copy_input(0, 0, params.nbytes());
  const int scatter_radix = 2;
  internal::append_knomial_scatter(sched, scatter_radix, /*parts=*/params.p,
                                   /*rot=*/params.root, kPhase0Tag);
  internal::append_kring_allgather_rounds(sched, params.k, /*rot=*/params.root,
                                          kPhase1Tag);
  return sched;
}

}  // namespace gencoll::core
