#include "core/schedule.hpp"

#include <sstream>

namespace gencoll::core {

void RankProgram::copy_input(std::size_t src_off, std::size_t dst_off, std::size_t bytes) {
  if (bytes == 0) return;
  Step s;
  s.kind = StepKind::kCopyInput;
  s.src_off = src_off;
  s.off = dst_off;
  s.bytes = bytes;
  steps.push_back(s);
}

void RankProgram::send(int peer, int tag, std::size_t off, std::size_t bytes) {
  if (bytes == 0) return;
  Step s;
  s.kind = StepKind::kSend;
  s.peer = peer;
  s.tag = tag;
  s.off = off;
  s.bytes = bytes;
  steps.push_back(s);
}

void RankProgram::send_input(int peer, int tag, std::size_t src_off, std::size_t bytes) {
  if (bytes == 0) return;
  Step s;
  s.kind = StepKind::kSendInput;
  s.peer = peer;
  s.tag = tag;
  s.src_off = src_off;
  s.bytes = bytes;
  steps.push_back(s);
}

void RankProgram::recv(int peer, int tag, std::size_t off, std::size_t bytes) {
  if (bytes == 0) return;
  Step s;
  s.kind = StepKind::kRecv;
  s.peer = peer;
  s.tag = tag;
  s.off = off;
  s.bytes = bytes;
  steps.push_back(s);
}

void RankProgram::recv_reduce(int peer, int tag, std::size_t off, std::size_t bytes) {
  if (bytes == 0) return;
  Step s;
  s.kind = StepKind::kRecvReduce;
  s.peer = peer;
  s.tag = tag;
  s.off = off;
  s.bytes = bytes;
  steps.push_back(s);
}

std::size_t Schedule::total_steps() const {
  std::size_t total = 0;
  for (const auto& r : ranks) total += r.steps.size();
  return total;
}

std::size_t Schedule::total_send_bytes() const {
  std::size_t total = 0;
  for (const auto& r : ranks) {
    for (const auto& s : r.steps) {
      if (s.kind == StepKind::kSend || s.kind == StepKind::kSendInput) {
        total += s.bytes;
      }
    }
  }
  return total;
}

const char* step_kind_name(StepKind kind) {
  switch (kind) {
    case StepKind::kCopyInput: return "copy_input";
    case StepKind::kSend: return "send";
    case StepKind::kSendInput: return "send_input";
    case StepKind::kRecv: return "recv";
    case StepKind::kRecvReduce: return "recv_reduce";
  }
  return "?";
}

std::string Schedule::dump() const {
  std::ostringstream os;
  os << name << " [" << params.describe() << "]\n";
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    // Per-rank traffic totals up front so a checker diagnostic citing
    // "rank R step I" can be located alongside the rank's byte budget.
    std::size_t send_bytes = 0;
    std::size_t recv_bytes = 0;
    for (const Step& s : ranks[r].steps) {
      if (s.kind == StepKind::kSend || s.kind == StepKind::kSendInput) {
        send_bytes += s.bytes;
      } else if (s.kind == StepKind::kRecv || s.kind == StepKind::kRecvReduce) {
        recv_bytes += s.bytes;
      }
    }
    os << "  rank " << r << " (send " << send_bytes << "B, recv " << recv_bytes
       << "B):\n";
    for (std::size_t i = 0; i < ranks[r].steps.size(); ++i) {
      const Step& s = ranks[r].steps[i];
      os << "    [" << i << "] " << step_kind_name(s.kind);
      if (s.kind == StepKind::kCopyInput) {
        os << " in+" << s.src_off << " -> out+" << s.off << " x" << s.bytes;
      } else if (s.kind == StepKind::kSendInput) {
        os << " peer=" << s.peer << " tag=" << s.tag << " in+" << s.src_off
           << " x" << s.bytes;
      } else {
        os << " peer=" << s.peer << " tag=" << s.tag << " out+" << s.off
           << " x" << s.bytes;
      }
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace gencoll::core
