#include "core/coll_params.hpp"

#include <stdexcept>

namespace gencoll::core {

const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kBcast: return "bcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kGather: return "gather";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kScatter: return "scatter";
    case CollOp::kReduceScatter: return "reduce_scatter";
    case CollOp::kAlltoall: return "alltoall";
    case CollOp::kBarrier: return "barrier";
    case CollOp::kScan: return "scan";
  }
  return "?";
}

const char* algorithm_name(Algorithm alg) {
  switch (alg) {
    case Algorithm::kLinear: return "linear";
    case Algorithm::kBinomial: return "binomial";
    case Algorithm::kRecursiveDoubling: return "recursive_doubling";
    case Algorithm::kRing: return "ring";
    case Algorithm::kRabenseifner: return "rabenseifner";
    case Algorithm::kBruck: return "bruck";
    case Algorithm::kRecursiveHalving: return "recursive_halving";
    case Algorithm::kPairwise: return "pairwise";
    case Algorithm::kKnomial: return "knomial";
    case Algorithm::kRecursiveMultiplying: return "recursive_multiplying";
    case Algorithm::kKring: return "kring";
    case Algorithm::kDissemination: return "dissemination";
    case Algorithm::kPipeline: return "pipeline";
  }
  return "?";
}

std::optional<CollOp> parse_coll_op(std::string_view name) {
  for (CollOp op : kAllCollOps) {
    if (name == coll_op_name(op)) return op;
  }
  return std::nullopt;
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  for (Algorithm alg : kAllAlgorithms) {
    if (name == algorithm_name(alg)) return alg;
  }
  return std::nullopt;
}

bool is_generalized(Algorithm alg) {
  return alg == Algorithm::kKnomial || alg == Algorithm::kRecursiveMultiplying ||
         alg == Algorithm::kKring || alg == Algorithm::kDissemination ||
         alg == Algorithm::kPipeline;
}

std::string CollParams::describe() const {
  std::string out = coll_op_name(op);
  out += " p=" + std::to_string(p);
  out += " root=" + std::to_string(root);
  out += " count=" + std::to_string(count);
  out += " elem=" + std::to_string(elem_size);
  out += " k=" + std::to_string(k);
  return out;
}

namespace {
std::size_t block_bytes(const CollParams& params, int rank) {
  return block_of(params.count, params.p, rank).elem_len * params.elem_size;
}
}  // namespace

std::size_t input_bytes(const CollParams& params, int rank) {
  switch (params.op) {
    case CollOp::kBcast:
    case CollOp::kScatter:
      return rank == params.root ? params.nbytes() : 0;
    case CollOp::kReduce:
    case CollOp::kAllreduce:
    case CollOp::kReduceScatter:
    case CollOp::kScan:
      return params.nbytes();
    case CollOp::kGather:
    case CollOp::kAllgather:
      return block_bytes(params, rank);
    case CollOp::kAlltoall:
      return params.nbytes() * static_cast<std::size_t>(params.p);
    case CollOp::kBarrier:
      return 0;
  }
  return 0;
}

std::size_t output_bytes(const CollParams& params) {
  switch (params.op) {
    case CollOp::kAlltoall:
      return params.nbytes() * static_cast<std::size_t>(params.p);
    case CollOp::kBarrier:
      return 1;  // token workspace
    default:
      return params.nbytes();
  }
}

bool has_result(const CollParams& params, int rank) {
  return !result_segments(params, rank).empty();
}

std::vector<Seg> result_segments(const CollParams& params, int rank) {
  const std::size_t n = output_bytes(params);
  switch (params.op) {
    case CollOp::kBcast:
    case CollOp::kAllgather:
    case CollOp::kAllreduce:
    case CollOp::kAlltoall:
    case CollOp::kScan:
      return n > 0 ? std::vector<Seg>{Seg{0, n}} : std::vector<Seg>{};
    case CollOp::kReduce:
    case CollOp::kGather:
      if (rank == params.root && n > 0) return {Seg{0, n}};
      return {};
    case CollOp::kScatter:
    case CollOp::kReduceScatter: {
      const Seg own = seg_of_blocks(params.count, params.elem_size, params.p,
                                    rank, rank + 1);
      return own.len > 0 ? std::vector<Seg>{own} : std::vector<Seg>{};
    }
    case CollOp::kBarrier:
      return {};
  }
  return {};
}

void check_params(const CollParams& params) {
  if (params.p <= 0) throw std::invalid_argument("CollParams: p must be positive");
  if (params.root < 0 || params.root >= params.p) {
    throw std::invalid_argument("CollParams: root out of range");
  }
  if (params.elem_size == 0) {
    throw std::invalid_argument("CollParams: elem_size must be nonzero");
  }
  if (params.k < 1) throw std::invalid_argument("CollParams: k must be >= 1");
}

}  // namespace gencoll::core
