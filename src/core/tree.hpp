// K-nomial tree structure over p virtual ranks (vrank 0 is the root).
//
// A k-nomial tree generalizes the binomial tree (k=2): writing a vrank in
// base k, its parent is the vrank with the lowest nonzero digit cleared, and
// its children add j*k^l (j = 1..k-1) at every digit position l below that
// lowest nonzero digit. The subtree rooted at vr spans the contiguous vrank
// range [vr, vr + subtree_span) clipped to p — the property the gather and
// scatter schedules exploit to keep payloads contiguous.
#pragma once

#include <vector>

namespace gencoll::core {

class KnomialTree {
 public:
  /// Requires p >= 1 and k >= 2.
  KnomialTree(int p, int k);

  [[nodiscard]] int p() const { return p_; }
  [[nodiscard]] int k() const { return k_; }

  /// Parent vrank; -1 for the root (vrank 0).
  [[nodiscard]] int parent(int vr) const;

  /// Children ordered by descending subtree size (the order a broadcast
  /// forwards in: the farthest/biggest subtree first, as in MPICH).
  [[nodiscard]] std::vector<int> children_desc(int vr) const;

  /// Children ordered by ascending subtree size (the order a reduction
  /// drains in: nearest leaves complete first). Within one level (equal
  /// subtree size) children keep ascending-j order, matching the order
  /// their messages arrive in when they start simultaneously.
  [[nodiscard]] std::vector<int> children_asc(int vr) const;

  /// Number of vranks in the subtree rooted at vr (including vr), i.e.
  /// min(k^d, p - vr) where k^d is vr's lowest nonzero digit position
  /// (k^ceil(log_k p) for the root).
  [[nodiscard]] int subtree_size(int vr) const;

  /// Depth of the deepest vrank (number of sequential communication rounds
  /// on the critical path). ceil(log_k(p)).
  [[nodiscard]] int depth() const;

 private:
  int p_;
  int k_;
};

}  // namespace gencoll::core
