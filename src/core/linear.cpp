// Linear (sequential) baselines: the naive algorithms the paper's Eq. (1)
// discussion starts from, and the "linear" algorithm vendor MPIs fall back
// to for some regimes (§VI-C observes Cray MPI's Reduce doing so poorly).
#include "core/algorithms.hpp"
#include "core/algorithms_internal.hpp"
#include "core/partition.hpp"

namespace gencoll::core {

namespace {

void require_op(const CollParams& params, CollOp op) {
  check_params(params);
  if (params.op != op) {
    throw std::invalid_argument("schedule builder called with mismatched op");
  }
}

Schedule make_schedule(const CollParams& params, const char* kernel) {
  Schedule sched;
  sched.params = params;
  sched.name = kernel;
  sched.ranks.resize(static_cast<std::size_t>(params.p));
  return sched;
}

}  // namespace

Schedule build_linear_bcast(const CollParams& params) {
  require_op(params, CollOp::kBcast);
  Schedule sched = make_schedule(params, "linear_bcast");
  const std::size_t n = params.nbytes();
  RankProgram& root = sched.ranks[static_cast<std::size_t>(params.root)];
  root.copy_input(0, 0, n);
  for (int d = 1; d < params.p; ++d) {
    const int peer = (params.root + d) % params.p;
    root.send(peer, 0, 0, n);
    sched.ranks[static_cast<std::size_t>(peer)].recv(params.root, 0, 0, n);
  }
  return sched;
}

Schedule build_linear_reduce(const CollParams& params) {
  require_op(params, CollOp::kReduce);
  Schedule sched = make_schedule(params, "linear_reduce");
  const std::size_t n = params.nbytes();
  for (auto& prog : sched.ranks) prog.copy_input(0, 0, n);
  RankProgram& root = sched.ranks[static_cast<std::size_t>(params.root)];
  for (int d = 1; d < params.p; ++d) {
    const int peer = (params.root + d) % params.p;
    sched.ranks[static_cast<std::size_t>(peer)].send(params.root, 0, 0, n);
    root.recv_reduce(peer, 0, 0, n);
  }
  return sched;
}

Schedule build_linear_gather(const CollParams& params) {
  require_op(params, CollOp::kGather);
  Schedule sched = make_schedule(params, "linear_gather");
  RankProgram& root = sched.ranks[static_cast<std::size_t>(params.root)];
  for (int r = 0; r < params.p; ++r) {
    const Seg block = seg_of_blocks(params.count, params.elem_size, params.p, r, r + 1);
    sched.ranks[static_cast<std::size_t>(r)].copy_input(0, block.off, block.len);
    if (r != params.root) {
      sched.ranks[static_cast<std::size_t>(r)].send(params.root, 0, block.off, block.len);
      root.recv(r, 0, block.off, block.len);
    }
  }
  return sched;
}

Schedule build_linear_allgather(const CollParams& params) {
  require_op(params, CollOp::kAllgather);
  Schedule sched = make_schedule(params, "linear_allgather");
  const int p = params.p;
  for (int r = 0; r < p; ++r) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
    const Seg own = seg_of_blocks(params.count, params.elem_size, p, r, r + 1);
    prog.copy_input(0, own.off, own.len);
    // Post all p-1 sends of the own block, then drain the p-1 receives.
    for (int d = 1; d < p; ++d) {
      prog.send((r + d) % p, 0, own.off, own.len);
    }
    for (int d = 1; d < p; ++d) {
      const int peer = (r - d + p) % p;
      const Seg theirs = seg_of_blocks(params.count, params.elem_size, p, peer, peer + 1);
      prog.recv(peer, 0, theirs.off, theirs.len);
    }
  }
  return sched;
}

Schedule build_rabenseifner_allreduce(const CollParams& params) {
  require_op(params, CollOp::kAllreduce);
  Schedule sched = make_schedule(params, "rabenseifner_allreduce");

  const int p = params.p;
  const std::size_t n = params.nbytes();
  const internal::CorePow cp = internal::core_pow(p, 2);
  const int core = cp.core;
  const int rem = p - core;

  for (auto& prog : sched.ranks) prog.copy_input(0, 0, n);

  constexpr int kFoldInTag = 0;
  constexpr int kHalvingTag = internal::kTagPhaseStride;
  constexpr int kDoublingTag = 2 * internal::kTagPhaseStride;
  constexpr int kFoldOutTag = 3 * internal::kTagPhaseStride;

  // Fold-in: extras hand their full vector to a power-of-two core partner.
  for (int c = 0; c < rem; ++c) {
    const int extra = core + c;
    sched.ranks[static_cast<std::size_t>(extra)].send(c, kFoldInTag, 0, n);
    sched.ranks[static_cast<std::size_t>(c)].recv_reduce(extra, kFoldInTag, 0, n);
  }

  // Recursive-halving reduce-scatter over `core` absolute-offset blocks:
  // each round sends away the half of the held block range the peer keeps.
  for (int vr = 0; vr < core; ++vr) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(vr)];
    int lo = 0;
    int hi = core;
    for (int i = 0; i < cp.rounds; ++i) {
      const int tag = kHalvingTag + i * internal::kTagRoundStride;
      const int half = (hi - lo) / 2;
      const int mid = lo + half;
      const bool lower = vr < mid;
      const int peer = lower ? vr + half : vr - half;
      const Seg keep = seg_of_blocks(params.count, params.elem_size, core,
                                     lower ? lo : mid, lower ? mid : hi);
      const Seg away = seg_of_blocks(params.count, params.elem_size, core,
                                     lower ? mid : lo, lower ? hi : mid);
      prog.send(peer, tag, away.off, away.len);
      prog.recv_reduce(peer, tag, keep.off, keep.len);
      if (lower) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }

  // Recursive-doubling allgather of the scattered blocks (recursive
  // multiplying rounds at k=2 over the core partition).
  internal::append_recmul_allgather_rounds(sched, /*k=*/2, cp.rounds, /*parts=*/core,
                                           core, /*rem=*/0, /*rot=*/0, kDoublingTag);

  // Fold-out: extras receive the finished result.
  for (int c = 0; c < rem; ++c) {
    const int extra = core + c;
    sched.ranks[static_cast<std::size_t>(c)].send(extra, kFoldOutTag, 0, n);
    sched.ranks[static_cast<std::size_t>(extra)].recv(c, kFoldOutTag, 0, n);
  }
  return sched;
}

}  // namespace gencoll::core
