// Structural validation of schedules.
//
// validate_schedule() logically executes a schedule without data: it checks
// buffer bounds, element alignment of reduce targets, send/recv matching
// (kind, size, FIFO order per (source, tag) channel), progress (no
// deadlock), and that no message is left undelivered. Tests run it on every
// generated schedule; executors may run it in debug builds.
#pragma once

#include "core/schedule.hpp"

namespace gencoll::core {

/// Throws std::logic_error with a diagnostic on the first violation.
void validate_schedule(const Schedule& sched);

/// As above, but additionally require that after execution every rank that
/// must hold a result (has_result) had its full output range written
/// (by CopyInput/Recv/RecvReduce coverage). Reduction data-flow correctness
/// is the executor tests' job; this catches "forgot to fill a block" bugs.
void validate_schedule_coverage(const Schedule& sched);

}  // namespace gencoll::core
