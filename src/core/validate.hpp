// Structural validation of schedules.
//
// match_schedule() logically executes a schedule without data: it checks
// buffer bounds, element alignment of reduce targets, send/recv matching
// (kind, size, FIFO order per (source, tag) channel), progress (no
// deadlock), and that no message is left undelivered — and returns the
// complete send<->recv pairing plus a legal linearization of all steps.
// The pairing is deterministic under the runtime's matching contract
// (per-(source, tag) FIFO, MPI non-overtaking), so downstream analyses
// (src/check/'s provenance and happens-before engines) consume it instead
// of re-deriving their own matching.
//
// validate_schedule() is the throw-on-violation wrapper tests and executors
// use; validate_schedule_coverage() additionally checks result coverage.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/schedule.hpp"

namespace gencoll::core {

/// Complete matching of a schedule's messages, produced by one logical
/// execution (sends never block; a receive consumes the head of its
/// (source, tag) channel).
struct ScheduleMatching {
  static constexpr std::uint32_t kUnmatched = 0xFFFFFFFFu;

  /// peer_step[rank][i] = step index *on the peer rank* of the send matched
  /// to this receive (or the receive matched to this send); kUnmatched for
  /// kCopyInput. The peer rank itself is Step::peer.
  std::vector<std::vector<std::uint32_t>> peer_step;

  /// All steps in the order the logical execution retired them — a legal
  /// linearization of the happens-before order (program order + send-before-
  /// matching-receive). Pairs are (rank, step index).
  std::vector<std::pair<int, std::uint32_t>> topo;
};

/// Logically execute and match the schedule. Throws std::logic_error with a
/// rank/step diagnostic on the first violation (bounds, alignment, size
/// mismatch, deadlock, undelivered message).
ScheduleMatching match_schedule(const Schedule& sched);

/// Throws std::logic_error with a diagnostic on the first violation.
void validate_schedule(const Schedule& sched);

/// As above, but additionally require that after execution every rank that
/// must hold a result (has_result) had its full output range written
/// (by CopyInput/Recv/RecvReduce coverage). Reduction data-flow correctness
/// is the executor tests' job; this catches "forgot to fill a block" bugs.
void validate_schedule_coverage(const Schedule& sched);

}  // namespace gencoll::core
