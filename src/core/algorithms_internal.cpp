#include "core/algorithms_internal.hpp"

#include <stdexcept>

#include "core/tree.hpp"

namespace gencoll::core::internal {

CorePow core_pow(int p, int k) {
  if (p < 1 || k < 2) throw std::invalid_argument("core_pow: need p >= 1, k >= 2");
  CorePow cp;
  // Grow core while core * k still fits in p (watch for overflow at huge k).
  while (cp.core <= p / k) {
    cp.core *= k;
    ++cp.rounds;
  }
  return cp;
}

void append_knomial_scatter(Schedule& sched, int radix, int parts, int rot,
                            int tag_base) {
  const CollParams& pr = sched.params;
  const KnomialTree tree(parts, radix);
  for (int vr = 0; vr < parts; ++vr) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(real_of(vr, rot, pr.p))];
    // Receive this vrank's whole subtree range from the parent, then peel
    // off each child's subtree. Biggest subtree first so deep branches start
    // early (matches the bcast forwarding order).
    if (vr != 0) {
      const int parent = tree.parent(vr);
      const Seg mine =
          seg_of_blocks(pr.count, pr.elem_size, parts, vr, vr + tree.subtree_size(vr));
      prog.recv(real_of(parent, rot, pr.p), tag_base, mine.off, mine.len);
    }
    for (int child : tree.children_desc(vr)) {
      const Seg cs = seg_of_blocks(pr.count, pr.elem_size, parts, child,
                                   child + tree.subtree_size(child));
      prog.send(real_of(child, rot, pr.p), tag_base, cs.off, cs.len);
    }
  }
}

std::vector<Seg> slot_segs(const CollParams& params, int parts, int core, int rem,
                           int lo, int hi) {
  std::vector<Seg> segs;
  if (lo >= hi) return segs;
  const Seg head = seg_of_blocks(params.count, params.elem_size, parts, lo, hi);
  if (head.len > 0) segs.push_back(head);
  // Folded layers: layer m holds blocks core + m*core + [lo, hi), clipped to
  // the rem extras that exist.
  for (int m = 0; m * core + lo < rem; ++m) {
    const int layer_lo = core + m * core + lo;
    const int layer_hi = core + std::min(m * core + hi, rem);
    const Seg layer =
        seg_of_blocks(params.count, params.elem_size, parts, layer_lo, layer_hi);
    if (layer.len > 0) segs.push_back(layer);
  }
  return merge_segs(std::move(segs));
}

void append_recmul_allgather_rounds(Schedule& sched, int k, int rounds, int parts,
                                    int core, int rem, int rot, int tag_base) {
  const CollParams& pr = sched.params;
  long long stride = 1;  // k^i
  for (int i = 0; i < rounds; ++i) {
    const int tag = tag_base + i * kTagRoundStride;
    for (int vr = 0; vr < core; ++vr) {
      RankProgram& prog = sched.ranks[static_cast<std::size_t>(real_of(vr, rot, pr.p))];
      const int digit = static_cast<int>((vr / stride) % k);
      // Held slot range before this round: the stride-aligned window.
      const int my_lo = static_cast<int>((vr / stride) * stride);
      const int my_hi = static_cast<int>(my_lo + stride);
      // Post all sends first (buffered / non-blocking), then drain receives:
      // this is the overlap the paper's multiport model assumes (§II-B2).
      // Multi-segment payloads share one tag: matching is FIFO per
      // (source, tag) and both sides enumerate segments in the same order.
      const std::vector<Seg> mine = slot_segs(pr, parts, core, rem, my_lo, my_hi);
      for (int j = 0; j < k; ++j) {
        if (j == digit) continue;
        const int peer = vr + static_cast<int>((j - digit) * stride);
        for (const Seg& s : mine) {
          prog.send(real_of(peer, rot, pr.p), tag, s.off, s.len);
        }
      }
      for (int j = 0; j < k; ++j) {
        if (j == digit) continue;
        const int peer = vr + static_cast<int>((j - digit) * stride);
        const int peer_lo = static_cast<int>((peer / stride) * stride);
        const std::vector<Seg> theirs =
            slot_segs(pr, parts, core, rem, peer_lo, peer_lo + static_cast<int>(stride));
        for (const Seg& s : theirs) {
          prog.recv(real_of(peer, rot, pr.p), tag, s.off, s.len);
        }
      }
    }
    stride *= k;
  }
}

void append_kring_allgather_rounds(Schedule& sched, int k, int rot, int tag_base) {
  const CollParams& pr = sched.params;
  const int p = pr.p;
  if (k < 1 || k > p) {
    throw std::invalid_argument("kring rounds: require 1 <= k <= p");
  }
  const int g = (p + k - 1) / k;  // number of groups; last may be smaller

  const auto group_base = [&](int G) { return G * k; };
  const auto group_size = [&](int G) { return G == g - 1 ? p - k * (g - 1) : k; };
  const auto block_seg = [&](int b) {
    return seg_of_blocks(pr.count, pr.elem_size, p, b, b + 1);
  };
  auto prog_of = [&](int vr) -> RankProgram& {
    return sched.ranks[static_cast<std::size_t>(real_of(vr, rot, p))];
  };
  // Tag slots: k+1 rounds per phase (<= k-1 intra + 1 inter), group-local
  // numbering is consistent because intra messages stay within a group.
  const auto round_tag = [&](int phase, int slot) {
    return tag_base + (phase * (k + 1) + slot) * kTagRoundStride;
  };

  // "Stream" m = the blocks of group m. In phase j, group G circulates
  // stream (G - j) internally, then forwards it to group G + 1. start[G][i]
  // holds the stream blocks member i owns at the phase start (its own block
  // in phase 0; whatever the inter hand-off assigned afterwards — several
  // blocks per member when the groups are non-uniform).
  std::vector<std::vector<std::vector<int>>> start(static_cast<std::size_t>(g));
  for (int G = 0; G < g; ++G) {
    auto& members = start[static_cast<std::size_t>(G)];
    members.resize(static_cast<std::size_t>(group_size(G)));
    for (int i = 0; i < group_size(G); ++i) {
      members[static_cast<std::size_t>(i)] = {group_base(G) + i};
    }
  }

  for (int j = 0; j < g; ++j) {
    std::vector<std::vector<std::vector<int>>> next_start(static_cast<std::size_t>(g));
    for (int G = 0; G < g; ++G) {
      next_start[static_cast<std::size_t>(G)].resize(
          static_cast<std::size_t>(group_size(G)));
    }

    // Intra rounds first for every group (they are independent and must not
    // be ordered behind any inter receive): the size-sG ring circulates each
    // member's phase-start set; after sG-1 rounds every member holds all of
    // stream (G - j).
    for (int G = 0; G < g; ++G) {
      const int sG = group_size(G);
      const int base = group_base(G);
      std::vector<std::vector<int>> rolling = start[static_cast<std::size_t>(G)];
      for (int t = 1; t < sG; ++t) {
        const int tag = round_tag(j, t);
        for (int i = 0; i < sG; ++i) {
          RankProgram& prog = prog_of(base + i);
          const int right = (i + 1) % sG;
          const int left = (i - 1 + sG) % sG;
          for (int b : rolling[static_cast<std::size_t>(i)]) {
            const Seg s = block_seg(b);
            prog.send(real_of(base + right, rot, p), tag, s.off, s.len);
          }
          for (int b : rolling[static_cast<std::size_t>(left)]) {
            const Seg s = block_seg(b);
            prog.recv(real_of(base + left, rot, p), tag, s.off, s.len);
          }
        }
        // Everyone forwards what just arrived in the next round.
        std::vector<std::vector<int>> arrived(rolling.size());
        for (int i = 0; i < sG; ++i) {
          arrived[static_cast<std::size_t>(i)] =
              rolling[static_cast<std::size_t>((i - 1 + sG) % sG)];
        }
        rolling = std::move(arrived);
      }
    }

    if (j == g - 1) break;  // final phase needs no hand-off

    // Inter hand-off: group G forwards stream (G - j) around the group ring
    // to G+1. Block `idx` of the stream travels from member (idx % sG) —
    // every member holds the full stream after the intra rounds — to member
    // (idx % s_{G+1}). Sends post for all groups before any receive so no
    // group's next phase is ordered behind another group's progress.
    for (int G = 0; G < g; ++G) {
      const int sG = group_size(G);
      const int dst = (G + 1) % g;
      const int sDst = group_size(dst);
      const int tag = round_tag(j, 0);
      const int m = ((G - j) % g + g) % g;
      const int stream_len = group_size(m);
      for (int idx = 0; idx < stream_len; ++idx) {
        const int b = group_base(m) + idx;
        const Seg s = block_seg(b);
        prog_of(group_base(G) + idx % sG)
            .send(real_of(group_base(dst) + idx % sDst, rot, p), tag, s.off, s.len);
        next_start[static_cast<std::size_t>(dst)]
                  [static_cast<std::size_t>(idx % sDst)].push_back(b);
      }
    }
    for (int dst = 0; dst < g; ++dst) {
      const int src = (dst - 1 + g) % g;
      const int sSrc = group_size(src);
      const int sDst = group_size(dst);
      const int tag = round_tag(j, 0);
      const int m = ((src - j) % g + g) % g;
      const int stream_len = group_size(m);
      for (int idx = 0; idx < stream_len; ++idx) {
        const int b = group_base(m) + idx;
        const Seg s = block_seg(b);
        prog_of(group_base(dst) + idx % sDst)
            .recv(real_of(group_base(src) + idx % sSrc, rot, p), tag, s.off, s.len);
      }
    }
    start = std::move(next_start);
  }
}

}  // namespace gencoll::core::internal
