// Extended substrate collectives beyond the paper's Table I: scatter,
// reduce-scatter, alltoall, barrier, and the Bruck allgather. These give the
// library MPICH-parity surface on the same schedule IR (DESIGN.md §3) and
// exercise the generalization idea on two more kernels: the k-nomial
// scatter tree and the k-dissemination barrier (the paper cites Hoefler's
// n-way dissemination as prior radix generalization).
#include <string>

#include "core/algorithms.hpp"
#include "core/algorithms_internal.hpp"
#include "core/partition.hpp"
#include "core/tree.hpp"

namespace gencoll::core {

using internal::real_of;

namespace {

void require_op(const CollParams& params, CollOp op) {
  check_params(params);
  if (params.op != op) {
    throw std::invalid_argument("schedule builder called with mismatched op");
  }
}

Schedule make_schedule(const CollParams& params, const std::string& kernel,
                       bool with_radix = true) {
  Schedule sched;
  sched.params = params;
  sched.name = with_radix ? kernel + "(k=" + std::to_string(params.k) + ")" : kernel;
  sched.ranks.resize(static_cast<std::size_t>(params.p));
  return sched;
}

}  // namespace

Schedule build_knomial_scatter(const CollParams& params) {
  require_op(params, CollOp::kScatter);
  if (params.k < 2) {
    throw unsupported_params("k-nomial-scatter", params, "requires k >= 2");
  }
  Schedule sched = make_schedule(params, "knomial_scatter");
  const int p = params.p;
  const KnomialTree tree(p, params.k);

  sched.ranks[static_cast<std::size_t>(params.root)].copy_input(0, 0, params.nbytes());
  for (int vr = 0; vr < p; ++vr) {
    const int rank = real_of(vr, params.root, p);
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(rank)];
    // Receive this vrank's whole subtree (blocks indexed by *real* rank, so
    // the root rotation can wrap the range into two segments), then peel off
    // each child's subtree, biggest first.
    if (vr != 0) {
      const auto segs =
          wrap_segs(params.count, params.elem_size, p, rank, tree.subtree_size(vr));
      for (std::size_t s = 0; s < segs.size(); ++s) {
        prog.recv(real_of(tree.parent(vr), params.root, p), 0, segs[s].off,
                  segs[s].len);
      }
    }
    for (int child : tree.children_desc(vr)) {
      const auto segs = wrap_segs(params.count, params.elem_size, p,
                                  real_of(child, params.root, p),
                                  tree.subtree_size(child));
      for (std::size_t s = 0; s < segs.size(); ++s) {
        prog.send(real_of(child, params.root, p), 0, segs[s].off, segs[s].len);
      }
    }
  }
  return sched;
}

Schedule build_linear_scatter(const CollParams& params) {
  require_op(params, CollOp::kScatter);
  Schedule sched = make_schedule(params, "linear_scatter", /*with_radix=*/false);
  RankProgram& root = sched.ranks[static_cast<std::size_t>(params.root)];
  root.copy_input(0, 0, params.nbytes());
  for (int d = 1; d < params.p; ++d) {
    const int peer = (params.root + d) % params.p;
    const Seg block = seg_of_blocks(params.count, params.elem_size, params.p,
                                    peer, peer + 1);
    root.send(peer, 0, block.off, block.len);
    sched.ranks[static_cast<std::size_t>(peer)].recv(params.root, 0, block.off,
                                                     block.len);
  }
  return sched;
}

Schedule build_ring_reduce_scatter(const CollParams& params) {
  require_op(params, CollOp::kReduceScatter);
  Schedule sched = make_schedule(params, "ring_reduce_scatter", /*with_radix=*/false);
  const int p = params.p;
  for (auto& prog : sched.ranks) prog.copy_input(0, 0, params.nbytes());
  // Round t: pass block (r - t - 1) right and fold block (r - t - 2) from
  // the left; after p-1 rounds rank r's last folded block is r - p = r.
  for (int t = 0; t < p - 1; ++t) {
    const int tag = t * internal::kTagRoundStride;
    for (int r = 0; r < p; ++r) {
      RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
      const int right = (r + 1) % p;
      const int left = (r - 1 + p) % p;
      const int send_block = ((r - t - 1) % p + p) % p;
      const int recv_block = ((r - t - 2) % p + p) % p;
      const Seg ss =
          seg_of_blocks(params.count, params.elem_size, p, send_block, send_block + 1);
      const Seg rs =
          seg_of_blocks(params.count, params.elem_size, p, recv_block, recv_block + 1);
      prog.send(right, tag, ss.off, ss.len);
      prog.recv_reduce(left, tag, rs.off, rs.len);
    }
  }
  return sched;
}

Schedule build_rechalving_reduce_scatter(const CollParams& params) {
  require_op(params, CollOp::kReduceScatter);
  const int p = params.p;
  if ((p & (p - 1)) != 0) {
    throw unsupported_params("recursive-halving-reduce-scatter", params,
                             "requires power-of-two p");
  }
  Schedule sched =
      make_schedule(params, "rechalving_reduce_scatter", /*with_radix=*/false);
  for (auto& prog : sched.ranks) prog.copy_input(0, 0, params.nbytes());
  for (int vr = 0; vr < p; ++vr) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(vr)];
    int lo = 0;
    int hi = p;
    int round = 0;
    while (hi - lo > 1) {
      const int tag = round * internal::kTagRoundStride;
      const int half = (hi - lo) / 2;
      const int mid = lo + half;
      const bool lower = vr < mid;
      const int peer = lower ? vr + half : vr - half;
      const Seg keep = seg_of_blocks(params.count, params.elem_size, p,
                                     lower ? lo : mid, lower ? mid : hi);
      const Seg away = seg_of_blocks(params.count, params.elem_size, p,
                                     lower ? mid : lo, lower ? hi : mid);
      prog.send(peer, tag, away.off, away.len);
      prog.recv_reduce(peer, tag, keep.off, keep.len);
      if (lower) {
        hi = mid;
      } else {
        lo = mid;
      }
      ++round;
    }
  }
  return sched;
}

namespace {

/// Per-destination chunk segment in the p*count-element alltoall layout.
Seg alltoall_chunk(const CollParams& params, int index) {
  return Seg{static_cast<std::size_t>(index) * params.nbytes(), params.nbytes()};
}

}  // namespace

Schedule build_direct_alltoall(const CollParams& params) {
  require_op(params, CollOp::kAlltoall);
  Schedule sched = make_schedule(params, "direct_alltoall", /*with_radix=*/false);
  const int p = params.p;
  for (int r = 0; r < p; ++r) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
    const Seg own = alltoall_chunk(params, r);
    prog.copy_input(own.off, own.off, own.len);
    // Post every outgoing chunk (straight from the input buffer — the
    // matching output slots are recv targets), then drain. Peer order is
    // staggered by rank so no single destination is hammered first.
    for (int d = 1; d < p; ++d) {
      const int peer = (r + d) % p;
      prog.send_input(peer, 0, alltoall_chunk(params, peer).off, params.nbytes());
    }
    for (int d = 1; d < p; ++d) {
      const int peer = (r - d + p) % p;
      prog.recv(peer, 0, alltoall_chunk(params, peer).off, params.nbytes());
    }
  }
  return sched;
}

Schedule build_pairwise_alltoall(const CollParams& params) {
  require_op(params, CollOp::kAlltoall);
  Schedule sched = make_schedule(params, "pairwise_alltoall", /*with_radix=*/false);
  const int p = params.p;
  for (int r = 0; r < p; ++r) {
    RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
    const Seg own = alltoall_chunk(params, r);
    prog.copy_input(own.off, own.off, own.len);
    for (int t = 1; t < p; ++t) {
      const int to = (r + t) % p;
      const int from = (r - t + p) % p;
      prog.send_input(to, t, alltoall_chunk(params, to).off, params.nbytes());
      prog.recv(from, t, alltoall_chunk(params, from).off, params.nbytes());
    }
  }
  return sched;
}

Schedule build_bruck_allgather(const CollParams& params) {
  require_op(params, CollOp::kAllgather);
  Schedule sched = make_schedule(params, "bruck_allgather", /*with_radix=*/false);
  const int p = params.p;
  for (int r = 0; r < p; ++r) {
    const Seg own = seg_of_blocks(params.count, params.elem_size, p, r, r + 1);
    sched.ranks[static_cast<std::size_t>(r)].copy_input(0, own.off, own.len);
  }
  // Round i: every rank ships its accumulated ring-range [r, r + 2^i) to
  // rank r - 2^i, doubling the held range; the final round sends only the
  // part still missing, which is what makes Bruck log-round at any p. The
  // blocks sit at their true output offsets, so no final rotation is needed
  // (the wrapped range is at most two segments).
  int held = 1;
  int round = 0;
  while (held < p) {
    const int send_count = std::min(held, p - held);
    const int dist = held;
    const int tag = round * internal::kTagRoundStride;
    for (int r = 0; r < p; ++r) {
      RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
      const int dst = (r - dist + p) % p;
      const int src = (r + dist) % p;
      for (const Seg& s :
           wrap_segs(params.count, params.elem_size, p, r, send_count)) {
        prog.send(dst, tag, s.off, s.len);
      }
      for (const Seg& s :
           wrap_segs(params.count, params.elem_size, p, src, send_count)) {
        prog.recv(src, tag, s.off, s.len);
      }
    }
    held += send_count;
    ++round;
  }
  return sched;
}

Schedule build_dissemination_barrier(const CollParams& params) {
  require_op(params, CollOp::kBarrier);
  if (params.k < 2) {
    throw unsupported_params("dissemination-barrier", params, "requires k >= 2");
  }
  Schedule sched = make_schedule(params, "dissemination_barrier");
  const int p = params.p;
  const int k = params.k;
  // Round i: signal the k-1 ranks at strides j*k^i ahead and hear from the
  // k-1 ranks behind; 1-byte tokens through the 1-byte output workspace.
  long long stride = 1;
  int round = 0;
  while (stride < p) {
    const int tag = round * internal::kTagRoundStride;
    for (int r = 0; r < p; ++r) {
      RankProgram& prog = sched.ranks[static_cast<std::size_t>(r)];
      for (int j = 1; j < k; ++j) {
        const long long d = static_cast<long long>(j) * stride;
        const int to = static_cast<int>((r + d) % p);
        if (to != r) prog.send(to, tag, 0, 1);
      }
      for (int j = 1; j < k; ++j) {
        const long long d = static_cast<long long>(j) * stride;
        const int from = static_cast<int>((r - d % p + p) % p);
        if (from != r) prog.recv(from, tag, 0, 1);
      }
    }
    stride *= k;
    ++round;
  }
  return sched;
}

}  // namespace gencoll::core
