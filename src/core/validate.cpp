#include "core/validate.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/partition.hpp"

namespace gencoll::core {

namespace {

/// One in-flight message on a channel: its size plus the sender's step index
/// (the matching engine pairs it with the receive that consumes it).
struct PendingMsg {
  std::size_t bytes;
  std::uint32_t send_step;
};

/// FIFO of pending messages on one channel. A tiny vector-with-head beats
/// std::deque here: most channels ever hold exactly one message, and
/// schedules create millions of channels.
struct ChannelQueue {
  std::uint32_t head = 0;
  std::vector<PendingMsg> msgs;

  [[nodiscard]] bool empty() const { return head == msgs.size(); }
  [[nodiscard]] std::size_t size() const { return msgs.size() - head; }
  void push(PendingMsg m) { msgs.push_back(m); }
  PendingMsg pop() { return msgs[head++]; }
};

std::string step_context(const Schedule& sched, int rank, std::size_t index) {
  return sched.name + " [" + sched.params.describe() + "] rank " +
         std::to_string(rank) + " step " + std::to_string(index);
}

}  // namespace

ScheduleMatching match_schedule(const Schedule& sched) {
  const CollParams& pr = sched.params;
  check_params(pr);
  if (sched.ranks.size() != static_cast<std::size_t>(pr.p)) {
    throw std::logic_error("validate: schedule rank count != p");
  }
  const std::size_t n = output_bytes(pr);

  // Static per-step checks.
  for (int r = 0; r < pr.p; ++r) {
    const auto& steps = sched.ranks[static_cast<std::size_t>(r)].steps;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      const Step& s = steps[i];
      if (s.bytes == 0) {
        throw std::logic_error(step_context(sched, r, i) + ": zero-byte step emitted");
      }
      if (s.kind != StepKind::kSendInput && s.off + s.bytes > n) {
        throw std::logic_error(step_context(sched, r, i) + ": output range out of bounds");
      }
      if (s.kind != StepKind::kCopyInput && (s.tag < 0 || s.tag >= (1 << 24))) {
        throw std::logic_error(step_context(sched, r, i) + ": tag out of range");
      }
      switch (s.kind) {
        case StepKind::kCopyInput:
        case StepKind::kSendInput:
          if (s.src_off + s.bytes > input_bytes(pr, r)) {
            throw std::logic_error(step_context(sched, r, i) +
                                   ": input range out of bounds");
          }
          if (s.kind == StepKind::kCopyInput) break;
          [[fallthrough]];
        case StepKind::kRecvReduce:
          if (s.kind == StepKind::kRecvReduce &&
              (s.off % pr.elem_size != 0 || s.bytes % pr.elem_size != 0)) {
            throw std::logic_error(step_context(sched, r, i) +
                                   ": recv_reduce range not element aligned");
          }
          [[fallthrough]];
        case StepKind::kSend:
        case StepKind::kRecv:
          if (s.peer < 0 || s.peer >= pr.p) {
            throw std::logic_error(step_context(sched, r, i) + ": peer out of range");
          }
          if (s.peer == r) {
            throw std::logic_error(step_context(sched, r, i) + ": self message");
          }
          break;
      }
    }
  }

  ScheduleMatching matching;
  matching.peer_step.resize(static_cast<std::size_t>(pr.p));
  std::size_t total_steps = 0;
  for (int r = 0; r < pr.p; ++r) {
    const std::size_t count = sched.ranks[static_cast<std::size_t>(r)].steps.size();
    matching.peer_step[static_cast<std::size_t>(r)]
        .assign(count, ScheduleMatching::kUnmatched);
    total_steps += count;
  }
  matching.topo.reserve(total_steps);

  // Logical execution: sends always progress; a receive progresses when the
  // head of its (source -> me, tag) channel matches. Detects deadlock,
  // size/kind mismatches, and channel-order violations. The retirement order
  // of steps is recorded as a legal linearization (topo), and each message's
  // send step is paired with the receive that consumed it (peer_step). This
  // pairing is exactly the runtime's: per-(source, tag) channels are FIFO in
  // post order (MPI non-overtaking), so the logical head-of-queue match is
  // the real match.
  std::vector<std::size_t> pc(static_cast<std::size_t>(pr.p), 0);
  // Packed channel key: (src * p + dst) in the high bits, tag in the low 24
  // (tags stay well below 2^24: phase strides of 2^20 times <= 8 phases).
  const auto channel_key = [&](int src, int dst, int tag) {
    return (static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(pr.p) +
            static_cast<std::uint64_t>(dst)) << 24 |
           static_cast<std::uint64_t>(tag);
  };
  std::unordered_map<std::uint64_t, ChannelQueue> channels;
  channels.reserve(static_cast<std::size_t>(pr.p) * 4);
  // At most one rank (the channel's destination) can block per channel.
  std::unordered_map<std::uint64_t, int> blocked_on;
  std::vector<int> worklist;
  worklist.reserve(static_cast<std::size_t>(pr.p));
  for (int r = pr.p - 1; r >= 0; --r) worklist.push_back(r);

  while (!worklist.empty()) {
    const int r = worklist.back();
    worklist.pop_back();
    auto& steps = sched.ranks[static_cast<std::size_t>(r)].steps;
    while (pc[static_cast<std::size_t>(r)] < steps.size()) {
      const std::size_t i = pc[static_cast<std::size_t>(r)];
      const Step& s = steps[i];
      if (s.kind == StepKind::kCopyInput) {
        matching.topo.emplace_back(r, static_cast<std::uint32_t>(i));
        ++pc[static_cast<std::size_t>(r)];
        continue;
      }
      if (s.kind == StepKind::kSend || s.kind == StepKind::kSendInput) {
        const std::uint64_t key = channel_key(r, s.peer, s.tag);
        channels[key].push(PendingMsg{s.bytes, static_cast<std::uint32_t>(i)});
        // Wake the receiver if it is parked on this channel.
        if (const auto blocked = blocked_on.find(key); blocked != blocked_on.end()) {
          worklist.push_back(blocked->second);
          blocked_on.erase(blocked);
        }
        matching.topo.emplace_back(r, static_cast<std::uint32_t>(i));
        ++pc[static_cast<std::size_t>(r)];
        continue;
      }
      // Receive-type step: consume the channel head or park.
      const std::uint64_t key = channel_key(s.peer, r, s.tag);
      auto it = channels.find(key);
      if (it == channels.end() || it->second.empty()) {
        blocked_on[key] = r;
        break;
      }
      const PendingMsg sent = it->second.pop();
      if (sent.bytes != s.bytes) {
        throw std::logic_error(step_context(sched, r, i) +
                               ": size mismatch with matched send (recv " +
                               std::to_string(s.bytes) + ", send " +
                               std::to_string(sent.bytes) + ")");
      }
      matching.peer_step[static_cast<std::size_t>(r)][i] = sent.send_step;
      matching.peer_step[static_cast<std::size_t>(s.peer)][sent.send_step] =
          static_cast<std::uint32_t>(i);
      matching.topo.emplace_back(r, static_cast<std::uint32_t>(i));
      ++pc[static_cast<std::size_t>(r)];
    }
  }

  for (int r = 0; r < pr.p; ++r) {
    if (pc[static_cast<std::size_t>(r)] !=
        sched.ranks[static_cast<std::size_t>(r)].steps.size()) {
      throw std::logic_error(
          step_context(sched, r, pc[static_cast<std::size_t>(r)]) +
          ": deadlock — receive never matched");
    }
  }
  for (const auto& [key, queue] : channels) {
    if (!queue.empty()) {
      const auto pair = key >> 24;
      const auto tag = key & ((1u << 24) - 1);
      throw std::logic_error(
          sched.name + ": " + std::to_string(queue.size()) +
          " unconsumed message(s) on channel src=" +
          std::to_string(pair / static_cast<std::uint64_t>(sched.params.p)) +
          " dst=" + std::to_string(pair % static_cast<std::uint64_t>(sched.params.p)) +
          " tag=" + std::to_string(tag));
    }
  }
  return matching;
}

void validate_schedule(const Schedule& sched) { (void)match_schedule(sched); }

void validate_schedule_coverage(const Schedule& sched) {
  validate_schedule(sched);
  const CollParams& pr = sched.params;
  for (int r = 0; r < pr.p; ++r) {
    const std::vector<Seg> required = result_segments(pr, r);
    if (required.empty()) continue;
    std::vector<Seg> written;
    for (const Step& s : sched.ranks[static_cast<std::size_t>(r)].steps) {
      if (s.kind == StepKind::kCopyInput || s.kind == StepKind::kRecv ||
          s.kind == StepKind::kRecvReduce) {
        written.push_back(Seg{s.off, s.bytes});
      }
    }
    const std::vector<Seg> merged = merge_segs(std::move(written));
    // Every required result segment must lie inside some written segment.
    for (const Seg& need : required) {
      bool covered = false;
      for (const Seg& have : merged) {
        if (need.off >= have.off && need.off + need.len <= have.off + have.len) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        throw std::logic_error(sched.name + " [" + pr.describe() + "] rank " +
                               std::to_string(r) +
                               ": result segment not covered by writes");
      }
    }
  }
}

}  // namespace gencoll::core
