// Two-level hierarchical collectives: intra-group phase -> leader-level
// generalized kernel -> intra-group fan-out.
//
// The paper's machines are deeply hierarchical (8 GPUs/node behind a few
// NICs), yet the flat kernels in core/ pay the inter-group alpha/beta even
// between ranks that share an address space. build_hierarchical_schedule
// composes any supported inter-group kernel over the p/g group *leaders*
// with dense intra-group phases, modeling ppn with a configurable group size
// g (ranks are grouped in consecutive blocks [j*g, (j+1)*g), leader j*g):
//
//   Bcast      root -> its leader (one hop, if distinct), leader-level
//              bcast, every leader fans out to its g-1 members.
//   Reduce     members send inputs to their leader (leader reduces in member
//              order — deterministic, bit-exact), leader-level reduce, one
//              final hop leader(root) -> root if distinct.
//   Allreduce  intra reduce, leader-level allreduce, intra fan-out.
//   Allgather  members send their block to the leader (requires p | count so
//              group blocks are contiguous), leader-level allgather over
//              g-sized superblocks, full-result fan-out.
//
// The composed Schedule is complete and flat — any executor can run it over
// the mailbox transport, and the symbolic prover (src/check/) verifies its
// provenance and cost like any other schedule. Schedule::hier records the
// phase boundaries; execute_hierarchical additionally replaces the intra
// phases with shared-segment copies (runtime/shm_group.hpp, zero mailbox
// traffic) whenever the transport is plain.
#pragma once

#include <span>

#include "core/coll_params.hpp"
#include "core/executor.hpp"
#include "core/schedule.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"

namespace gencoll::core {

/// Tag bases for the composed phases: high multiples of the kernels' phase
/// stride (1 << 20), above every flat kernel's tag space (they use at most
/// 3 strides) yet below the schedule validator's 1 << 24 tag ceiling, so
/// spliced leader-kernel tags can never collide with the intra/fan-out hops.
inline constexpr int kHierIntraTag = 8 << 20;
inline constexpr int kHierFanoutTag = 9 << 20;
inline constexpr int kHierRootHopTag = 10 << 20;

/// How a hierarchical composition is configured: the group size g (modeling
/// processes-per-node) and the generalized kernel + radix that runs over the
/// p/g leaders.
struct HierSpec {
  int group_size = 1;
  Algorithm inter_alg = Algorithm::kRecursiveMultiplying;
  int inter_k = 2;
  /// Execute intra phases over shared segments (runtime/shm_group.hpp) when
  /// the transport allows; false forces the mailbox path even then.
  bool intra_shm = true;
};

/// Collectives the hierarchical composition implements.
[[nodiscard]] bool hier_supported_op(CollOp op);

/// True when build_hierarchical_schedule(spec, params) would succeed:
/// supported op, g >= 2 dividing p, count >= 1 (and p | count for
/// Allgather), and an inter kernel that supports the p/g-leader subproblem
/// with offset-preserving composition.
[[nodiscard]] bool supports_hierarchical(const HierSpec& spec,
                                         const CollParams& params);

/// Compose the two-level schedule. Throws UnsupportedParams (with reason)
/// when unsupported. The result carries Schedule::hier and is submitted to
/// the registry's schedule auditor, like every registry-built schedule.
Schedule build_hierarchical_schedule(const HierSpec& spec,
                                     const CollParams& params);

/// Execute one rank of a hierarchical schedule. On a plain transport with
/// hier->intra_shm set, the intra phases run over the rank's ShmGroup
/// (direct memcpy / apply_reduce from the publisher's buffers, zero mailbox
/// traffic) and only the leader-level phase touches the mailbox; otherwise
/// the flat composed program is executed as-is, so fault injection and
/// reliability keep working unchanged. Non-hier schedules fall through to
/// execute_rank_program.
void execute_hierarchical(const Schedule& sched, runtime::Communicator& comm,
                          std::span<const std::byte> input,
                          std::span<std::byte> output, runtime::DataType type,
                          runtime::ReduceOp op, obs::TraceSink* sink = nullptr,
                          const ExecTuning& tuning = {});

}  // namespace gencoll::core
