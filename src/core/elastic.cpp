#include "core/elastic.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "core/algorithms.hpp"
#include "core/registry.hpp"
#include "fault/error.hpp"

namespace gencoll::core {

namespace {

using steady_clock = std::chrono::steady_clock;

/// Flat fallback chain: the hint as-is, the hint across its candidate
/// radixes, then every registered algorithm across its radixes.
Schedule build_flat(Algorithm hint, CollParams params) {
  if (supports_params(hint, params)) return build_schedule(hint, params);
  for (int k : candidate_radixes(params.op, hint, params.p)) {
    params.k = k;
    if (supports_params(hint, params)) return build_schedule(hint, params);
  }
  for (Algorithm alg : algorithms_for(params.op)) {
    for (int k : candidate_radixes(params.op, alg, params.p)) {
      params.k = k;
      if (supports_params(alg, params)) return build_schedule(alg, params);
    }
  }
  throw unsupported_params("elastic", params,
                           "no registered algorithm supports the shrunk world");
}

void emit_instant(obs::TraceSink* sink, obs::InstantKind kind, int rank,
                  int peer, int tag) {
  if (sink == nullptr) return;
  obs::InstantEvent ev;
  ev.kind = kind;
  ev.rank = rank;
  ev.peer = peer;
  ev.tag = tag;
  ev.time_us = obs::wallclock_us();
  sink->instant(ev);
}

bool recoverable(FaultKind kind) {
  // kRevoked: a peer's death (or suspicion) revoked our epoch. kTimeout /
  // kRetriesExhausted: we suspect a loss ourselves — revoke and let the
  // agreement decide who is actually gone. Everything else (own kRankDeath,
  // abort poison, schedule bugs) is not survivable by shrinking.
  return kind == FaultKind::kRevoked || kind == FaultKind::kTimeout ||
         kind == FaultKind::kRetriesExhausted;
}

}  // namespace

Schedule build_elastic_schedule(const ElasticOptions& options, CollParams params) {
  check_params(params);
  if (options.hier) {
    // Hierarchy repair: the original group size first (shape preserved when
    // it still divides p'), then small standard groups. The inter kernel and
    // radix travel unchanged; supports_hierarchical re-validates them
    // against the shrunk leader count.
    std::vector<int> groups{options.hier->group_size, 2, 4, 8};
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const int g = groups[i];
      if (std::find(groups.begin(), groups.begin() + static_cast<std::ptrdiff_t>(i),
                    g) != groups.begin() + static_cast<std::ptrdiff_t>(i)) {
        continue;  // duplicate of an earlier candidate
      }
      HierSpec spec = *options.hier;
      spec.group_size = g;
      if (supports_hierarchical(spec, params)) {
        return build_hierarchical_schedule(spec, params);
      }
    }
    return build_flat(options.hier->inter_alg, params);
  }
  return build_flat(options.alg, params);
}

std::vector<std::byte> execute_rank_elastic(runtime::Communicator& comm,
                                            const CollParams& params,
                                            runtime::DataType type,
                                            runtime::ReduceOp op,
                                            const ElasticOptions& options,
                                            const InputProvider& provider,
                                            ElasticReport* report) {
  check_params(params);
  runtime::World& world = comm.world();
  const int self = comm.world_rank();
  const fault::RecoveryConfig& cfg = world.membership().config();
  obs::TraceSink* sink = options.sink;

  ElasticReport rep;
  // Rooted ops track the root as an ORIGINAL rank across shrinks; when the
  // root itself dies the lowest-ranked survivor inherits the role (dense
  // rank 0 after the remap, by the ascending-survivor ordering).
  int root_orig = params.root;
  runtime::EpochView view = world.membership().view();

  for (;;) {
    CollParams cur = params;
    cur.p = comm.size();
    const int root_dense = view.dense_rank(root_orig);
    cur.root = root_dense >= 0 ? root_dense : 0;

    std::vector<std::byte> output(output_bytes(cur));
    try {
      if (cur.p == 1) {
        // Degenerate single-survivor world: every collective reduces to an
        // input -> output copy (nothing left to exchange).
        const std::vector<std::byte> input = provider(cur, comm.rank());
        const std::size_t n = std::min(input.size(), output.size());
        if (n != 0) std::memcpy(output.data(), input.data(), n);
        rep.schedule_name = "identity(p=1)";
        ++rep.attempts;
      } else {
        const Schedule sched = build_elastic_schedule(options, cur);
        const std::vector<std::byte> input = provider(cur, comm.rank());
        ++rep.attempts;
        if (sched.hier) {
          execute_hierarchical(sched, comm, input, output, type, op, sink,
                               options.tuning);
        } else {
          execute_rank_program(sched, comm, input, output, type, op, sink,
                               options.tuning);
        }
        rep.schedule_name = sched.name;
      }
      // Commit rendezvous: the result stands only when every member of this
      // epoch finished. A false return means the epoch was revoked under us
      // (late peer crash) — recover and retry like any mid-flight revoke.
      if (world.membership().try_commit(self, cfg.agree_timeout)) {
        rep.final_p = cur.p;
        rep.final_epoch = comm.epoch();
        rep.survivors = view.survivors;
        if (report != nullptr) *report = rep;
        return output;
      }
    } catch (const FaultError& e) {
      if (!recoverable(e.kind())) throw;
      // Make sure the epoch really is revoked so every survivor converges on
      // the agreement (no-op when the crash site already revoked it).
      if (e.kind() != FaultKind::kRevoked) {
        emit_instant(sink, obs::InstantKind::kRevoke, self, -1, comm.epoch());
        world.revoke(comm.epoch(), self, e.what());
      }
    }

    // ---- recovery: agree on the survivors and enter the new epoch --------
    const auto t0 = steady_clock::now();
    emit_instant(sink, obs::InstantKind::kAgree, self, -1, comm.epoch());
    view = world.join_recovery(comm.epoch(), self);  // throws if we are dead
    comm.apply_epoch(view);
    ++rep.shrinks;
    rep.recovery_latency_ms +=
        std::chrono::duration<double, std::milli>(steady_clock::now() - t0)
            .count();
    emit_instant(sink, obs::InstantKind::kShrink, self, view.size(), view.epoch);
    if (rep.shrinks > cfg.max_recoveries) {
      throw FaultError(FaultKind::kRetriesExhausted, self, -1, -1,
                       "elastic recovery cap reached after " +
                           std::to_string(rep.shrinks) + " shrink(s) (cap " +
                           std::to_string(cfg.max_recoveries) + ")");
    }
    if (root_dense >= 0 && view.dense_rank(root_orig) < 0) {
      // The root died between attempts; promote the lowest survivor.
      root_orig = view.survivors.front();
    } else if (root_dense < 0) {
      root_orig = view.survivors.front();
    }
  }
}

std::vector<std::vector<std::byte>> execute_threaded_elastic(
    const CollParams& params, runtime::DataType type, runtime::ReduceOp op,
    const ElasticOptions& options, const InputProvider& provider,
    const runtime::WorldOptions& world_options,
    std::vector<ElasticReport>* reports) {
  check_params(params);
  std::vector<std::vector<std::byte>> outputs(static_cast<std::size_t>(params.p));
  if (reports != nullptr) {
    reports->assign(static_cast<std::size_t>(params.p), ElasticReport{});
  }
  runtime::World::run(
      params.p,
      [&](runtime::Communicator& comm) {
        ElasticReport rep;
        std::vector<std::byte> out = execute_rank_elastic(
            comm, params, type, op, options, provider, &rep);
        // Each thread writes only its own (original-rank) slot.
        const auto r = static_cast<std::size_t>(comm.world_rank());
        outputs[r] = std::move(out);
        if (reports != nullptr) (*reports)[r] = rep;
      },
      world_options);
  return outputs;
}

}  // namespace gencoll::core
