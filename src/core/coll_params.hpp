// Collective operation descriptors shared by every algorithm.
//
// Data-layout conventions (fixed across the whole library, matching the
// paper's cost models where `n` is the *total* payload):
//   Bcast         : root holds n bytes; every rank ends with the same n.
//   Reduce        : every rank contributes n bytes; root ends with the
//                   element-wise reduction.
//   Gather        : the n bytes are partitioned into p blocks by rank id;
//                   rank r contributes block r; root ends with all n bytes.
//   Allgather     : like Gather but every rank ends with all n bytes.
//   Allreduce     : like Reduce but every rank ends with the result.
//   Scatter       : inverse Gather — root holds n bytes; rank r ends with
//                   block r (at block r's offset of its output workspace).
//   ReduceScatter : every rank contributes n bytes; rank r ends with the
//                   reduced block r (at block r's offset).
//   Alltoall      : count is the *per-destination* element count: every rank
//                   holds p*count input elements (chunk d goes to rank d)
//                   and ends with p*count output elements (chunk s came from
//                   rank s).
//   Barrier       : no payload; schedules exchange 1-byte tokens through a
//                   1-byte output workspace.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.hpp"

namespace gencoll::core {

enum class CollOp {
  // The paper's four headline collectives plus Gather (its Fig. 1 example).
  kBcast,
  kReduce,
  kGather,
  kAllgather,
  kAllreduce,
  // Extended substrate surface (MPICH-parity operations built on the same
  // kernels; see DESIGN.md §3).
  kScatter,
  kReduceScatter,
  kAlltoall,
  kBarrier,
  kScan,  ///< inclusive prefix reduction: out[r] = op(in[0..r])
};

enum class Algorithm {
  // Baselines.
  kLinear,               ///< root sends/receives sequentially (or direct alltoall)
  kBinomial,             ///< k-nomial at fixed k=2
  kRecursiveDoubling,    ///< recursive multiplying at fixed k=2
  kRing,                 ///< k-ring at fixed k=1
  kRabenseifner,         ///< reduce-scatter + allgather allreduce
  kBruck,                ///< Bruck allgather (log rounds at any p)
  kRecursiveHalving,     ///< reduce-scatter by recursive halving (pow2 core)
  kPairwise,             ///< pairwise-exchange alltoall
  // Generalized (variable-radix) kernels.
  kKnomial,
  kRecursiveMultiplying,
  kKring,
  kDissemination,        ///< k-dissemination barrier (n-way dissemination)
  kPipeline,             ///< segmented chain bcast; the parameter is the
                         ///< segment count rather than a tree radix
};

const char* coll_op_name(CollOp op);
const char* algorithm_name(Algorithm alg);
std::optional<CollOp> parse_coll_op(std::string_view name);
std::optional<Algorithm> parse_algorithm(std::string_view name);

inline constexpr CollOp kAllCollOps[] = {
    CollOp::kBcast,   CollOp::kReduce,        CollOp::kGather,
    CollOp::kAllgather, CollOp::kAllreduce,
    CollOp::kScatter, CollOp::kReduceScatter, CollOp::kAlltoall,
    CollOp::kBarrier, CollOp::kScan,
};

/// The paper's original evaluation surface (Table I + Gather).
inline constexpr CollOp kPaperCollOps[] = {
    CollOp::kBcast, CollOp::kReduce, CollOp::kGather,
    CollOp::kAllgather, CollOp::kAllreduce,
};

inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::kLinear,  Algorithm::kBinomial, Algorithm::kRecursiveDoubling,
    Algorithm::kRing,    Algorithm::kRabenseifner,
    Algorithm::kBruck,   Algorithm::kRecursiveHalving, Algorithm::kPairwise,
    Algorithm::kKnomial, Algorithm::kRecursiveMultiplying, Algorithm::kKring,
    Algorithm::kDissemination, Algorithm::kPipeline,
};

/// True for algorithms whose radix is tunable (the paper's generalized set).
bool is_generalized(Algorithm alg);

struct CollParams {
  CollOp op = CollOp::kBcast;
  int p = 1;                ///< number of ranks
  int root = 0;             ///< ignored by Allgather/Allreduce
  std::size_t count = 0;    ///< total element count (the paper's n = count*elem_size)
  std::size_t elem_size = 1;
  int k = 2;                ///< radix; ignored by non-generalized algorithms

  /// For Alltoall this is the per-destination payload; the buffers hold
  /// p * nbytes(). For Barrier it is 0.
  [[nodiscard]] std::size_t nbytes() const { return count * elem_size; }
  [[nodiscard]] std::string describe() const;
};

/// Size in bytes of the input buffer rank `rank` must provide.
std::size_t input_bytes(const CollParams& params, int rank);

/// Size in bytes of the output buffer (workspace) each rank must provide.
/// Uniform across ranks: the full payload (non-root / non-owned regions are
/// workspace with unspecified final contents, as in MPI).
std::size_t output_bytes(const CollParams& params);

/// True if `rank` receives a defined result in its output buffer.
bool has_result(const CollParams& params, int rank);

/// The byte ranges of `rank`'s output that carry a defined result: the full
/// buffer for Bcast/Allgather/Allreduce/Alltoall (and at the root of
/// Reduce/Gather), this rank's block for Scatter/ReduceScatter, nothing for
/// Barrier or rootless ranks of rooted collectives.
std::vector<Seg> result_segments(const CollParams& params, int rank);

/// Throws std::invalid_argument if params are malformed (p <= 0, root out of
/// range, elem_size == 0, k < 1, ...).
void check_params(const CollParams& params);

}  // namespace gencoll::core
