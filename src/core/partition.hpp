// Block partitioning of a collective payload.
//
// Gather/Allgather (and the scatter phases of scatter-allgather Bcast) split
// the `count` elements into `parts` blocks. Blocks are element-aligned so
// RecvReduce steps always cover whole elements. Partitioning is "balanced":
// the first (count % parts) blocks carry one extra element, so block sizes
// differ by at most one element and every rank can compute every block's
// offset without communication.
#pragma once

#include <cstddef>
#include <vector>

namespace gencoll::core {

/// A byte range within the output buffer.
struct Seg {
  std::size_t off = 0;
  std::size_t len = 0;

  friend bool operator==(const Seg&, const Seg&) = default;
};

/// A block in element units.
struct Block {
  std::size_t elem_off = 0;
  std::size_t elem_len = 0;

  friend bool operator==(const Block&, const Block&) = default;
};

/// Block `idx` of `count` elements split into `parts` balanced blocks.
/// Requires 0 <= idx < parts.
Block block_of(std::size_t count, int parts, int idx);

/// Byte segment spanning blocks [lo, hi) of the partition (hi >= lo).
/// Contiguous by construction since blocks are laid out in index order.
Seg seg_of_blocks(std::size_t count, std::size_t elem_size, int parts, int lo, int hi);

/// Byte segments covering the block index range [lo, lo+len) taken modulo
/// `parts` — i.e. a contiguous range in *ring order* that may wrap past the
/// last block. Returns 0, 1, or 2 non-empty segments in buffer order of the
/// ring traversal (the wrapped tail, if any, comes second).
std::vector<Seg> wrap_segs(std::size_t count, std::size_t elem_size, int parts,
                           int lo, int len);

/// Coalesce adjacent/overlapping segments (sorts by offset). Used by tests
/// to assert full-coverage invariants.
std::vector<Seg> merge_segs(std::vector<Seg> segs);

}  // namespace gencoll::core
