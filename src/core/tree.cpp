#include "core/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace gencoll::core {

KnomialTree::KnomialTree(int p, int k) : p_(p), k_(k) {
  if (p < 1) throw std::invalid_argument("KnomialTree: p must be >= 1");
  if (k < 2) throw std::invalid_argument("KnomialTree: k must be >= 2");
}

int KnomialTree::parent(int vr) const {
  if (vr < 0 || vr >= p_) throw std::out_of_range("KnomialTree::parent: bad vrank");
  long long mask = 1;
  while (mask < p_) {
    const int digit = static_cast<int>((vr / mask) % k_);
    if (digit != 0) return static_cast<int>(vr - static_cast<long long>(digit) * mask);
    mask *= k_;
  }
  return -1;  // vr == 0
}

namespace {
// The k^d at which `vr` has its lowest nonzero digit; for the root this is
// the smallest power of k >= p (children exist at every level below it).
long long limit_mask(int p, int k, int vr) {
  long long mask = 1;
  while (mask < p) {
    if ((vr / mask) % k != 0) return mask;
    mask *= k;
  }
  return mask;
}
}  // namespace

std::vector<int> KnomialTree::children_desc(int vr) const {
  if (vr < 0 || vr >= p_) throw std::out_of_range("KnomialTree::children: bad vrank");
  const long long limit = limit_mask(p_, k_, vr);
  // Collect levels below the limit, largest mask first.
  std::vector<long long> masks;
  for (long long mask = 1; mask < limit && mask < p_; mask *= k_) masks.push_back(mask);
  std::vector<int> children;
  for (auto it = masks.rbegin(); it != masks.rend(); ++it) {
    for (int j = 1; j < k_; ++j) {
      const long long child = vr + static_cast<long long>(j) * (*it);
      if (child < p_) children.push_back(static_cast<int>(child));
    }
  }
  return children;
}

std::vector<int> KnomialTree::children_asc(int vr) const {
  if (vr < 0 || vr >= p_) throw std::out_of_range("KnomialTree::children: bad vrank");
  const long long limit = limit_mask(p_, k_, vr);
  std::vector<int> children;
  for (long long mask = 1; mask < limit && mask < p_; mask *= k_) {
    for (int j = 1; j < k_; ++j) {
      const long long child = vr + static_cast<long long>(j) * mask;
      if (child < p_) children.push_back(static_cast<int>(child));
    }
  }
  return children;
}

int KnomialTree::subtree_size(int vr) const {
  if (vr < 0 || vr >= p_) throw std::out_of_range("KnomialTree::subtree_size: bad vrank");
  const long long limit = limit_mask(p_, k_, vr);
  return static_cast<int>(std::min<long long>(limit, p_ - vr));
}

int KnomialTree::depth() const {
  int d = 0;
  long long span = 1;
  while (span < p_) {
    span *= k_;
    ++d;
  }
  return d;
}

}  // namespace gencoll::core
