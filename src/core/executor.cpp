#include "core/executor.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/hierarchy.hpp"
#include "runtime/world.hpp"

namespace gencoll::core {

namespace {

obs::SpanKind span_kind_of(StepKind kind) {
  switch (kind) {
    case StepKind::kCopyInput: return obs::SpanKind::kCopyInput;
    case StepKind::kSend: return obs::SpanKind::kSend;
    case StepKind::kSendInput: return obs::SpanKind::kSendInput;
    case StepKind::kRecv: return obs::SpanKind::kRecv;
    case StepKind::kRecvReduce: return obs::SpanKind::kRecvReduce;
  }
  return obs::SpanKind::kSend;
}

/// Emit one span (and message instant) after a step — or one segment of a
/// pipelined step — completed. `bytes` is the segment's size, so per-segment
/// spans of one step sum to the step's bytes. Component fields stay zero:
/// wall-clock execution has no cost model.
void emit_step(obs::TraceSink& sink, int rank, std::size_t step, const Step& s,
               std::size_t bytes, double begin_us, double end_us,
               int group = -1, obs::LinkClass link = obs::LinkClass::kUnknown) {
  obs::SpanEvent ev;
  ev.kind = span_kind_of(s.kind);
  ev.rank = rank;
  ev.step = static_cast<std::int32_t>(step);
  ev.bytes = bytes;
  ev.begin_us = begin_us;
  ev.end_us = end_us;
  ev.group = group;
  if (s.kind != StepKind::kCopyInput) {
    ev.peer = s.peer;
    ev.tag = s.tag;
    ev.link = link;
  }
  if (obs::is_send(ev.kind)) ev.post_us = end_us;
  sink.span(ev);

  if (s.kind == StepKind::kCopyInput) return;
  obs::InstantEvent inst;
  inst.kind = obs::is_send(ev.kind) ? obs::InstantKind::kMessagePost
                                    : obs::InstantKind::kMessageMatch;
  inst.rank = rank;
  inst.peer = s.peer;
  inst.tag = s.tag;
  inst.bytes = bytes;
  inst.time_us = end_us;
  sink.instant(inst);
}

/// Segment size for pipelined steps: the configured segment rounded down to
/// an element multiple, 0 when pipelining is off or cannot hold a whole
/// element. Both sides of a matched message derive segmentation from the
/// step's byte count alone, so sender and receiver always agree.
std::size_t pipeline_segment_bytes(const ExecTuning& tuning, std::size_t elem_size) {
  if (tuning.pipeline_threshold == 0 || tuning.pipeline_segment == 0) return 0;
  return tuning.pipeline_segment - tuning.pipeline_segment % elem_size;
}

}  // namespace

void execute_rank_program(const Schedule& sched, runtime::Communicator& comm,
                          std::span<const std::byte> input,
                          std::span<std::byte> output, runtime::DataType type,
                          runtime::ReduceOp op, obs::TraceSink* sink,
                          const ExecTuning& tuning) {
  const CollParams& pr = sched.params;
  if (comm.size() != pr.p) {
    throw std::invalid_argument("execute_rank_program: communicator size != p");
  }
  if (runtime::datatype_size(type) != pr.elem_size) {
    throw std::invalid_argument("execute_rank_program: elem_size != datatype size");
  }
  const int rank = comm.rank();
  // Keep the communicator's sink in lockstep with the executor's so
  // reliability instants (retransmit / corrupt-detected / abort) land in the
  // same trace as the step spans.
  comm.set_trace_sink(sink);
  if (input.size() < input_bytes(pr, rank)) {
    throw std::invalid_argument("execute_rank_program: input too small");
  }
  if (output.size() < output_bytes(pr)) {
    throw std::invalid_argument("execute_rank_program: output too small");
  }

  execute_step_range(sched, comm, input, output, type, op, sink, tuning, 0,
                     sched.ranks[static_cast<std::size_t>(rank)].steps.size());
}

void execute_step_range(const Schedule& sched, runtime::Communicator& comm,
                        std::span<const std::byte> input,
                        std::span<std::byte> output, runtime::DataType type,
                        runtime::ReduceOp op, obs::TraceSink* sink,
                        const ExecTuning& tuning, std::size_t begin_step,
                        std::size_t end_step) {
  const CollParams& pr = sched.params;
  const int rank = comm.rank();

  // The fast paths require the plain in-process transport: reliability and
  // fault injection own the wire bytes (envelopes, retransmits) and number
  // whole messages, so both zero-copy views and segmentation stand down.
  // plain_transport() comes from WorldOptions and is uniform across ranks.
  const bool plain = comm.plain_transport();
  const bool zero_copy = tuning.zero_copy && plain;
  const std::size_t seg_bytes =
      plain ? pipeline_segment_bytes(tuning, pr.elem_size) : 0;
  const auto reduce_fn =
      tuning.scalar_reduce ? runtime::apply_reduce_scalar : runtime::apply_reduce;

  // Hierarchical schedules carry topology: classify each message as intra-
  // or inter-group so obs metrics split traffic by link class.
  const int gsize = sched.hier ? sched.hier->group_size : 0;
  const int group = gsize > 1 ? rank / gsize : -1;
  const auto link_of = [&](const Step& st) {
    if (gsize <= 1 || st.kind == StepKind::kCopyInput || st.peer < 0) {
      return obs::LinkClass::kUnknown;
    }
    return st.peer / gsize == group ? obs::LinkClass::kIntra
                                    : obs::LinkClass::kInter;
  };

  const auto& steps = sched.ranks[static_cast<std::size_t>(rank)].steps;
  for (std::size_t i = begin_step; i < end_step; ++i) {
    const Step& s = steps[i];
    double begin_us = sink != nullptr ? obs::wallclock_us() : 0.0;

    if (s.kind == StepKind::kCopyInput) {
      // Zero-byte copies happen for degenerate schedules; an empty span's
      // data() may be null, and memcpy's pointer args must be non-null.
      if (s.bytes != 0) {
        std::memcpy(output.data() + s.off, input.data() + s.src_off, s.bytes);
      }
      if (sink != nullptr) {
        emit_step(*sink, rank, i, s, s.bytes, begin_us, obs::wallclock_us(),
                  group);
      }
      continue;
    }

    // Communication step, possibly pipelined: both endpoints of a matched
    // message split identically because matched steps carry equal byte
    // counts (validated at schedule build) and segmentation depends only on
    // the count. Segments share the step's (peer, tag) channel; the
    // transport's per-channel FIFO keeps them in order.
    const bool pipelined =
        seg_bytes != 0 && s.bytes >= tuning.pipeline_threshold && s.bytes > seg_bytes;
    const std::size_t chunk = pipelined ? seg_bytes : s.bytes;
    std::size_t done = 0;
    do {
      const std::size_t len = std::min(chunk, s.bytes - done);
      switch (s.kind) {
        case StepKind::kSend:
          if (zero_copy) {
            comm.send_view(s.peer, s.tag, output.subspan(s.off + done, len));
          } else {
            comm.send(s.peer, s.tag, output.subspan(s.off + done, len));
          }
          break;
        case StepKind::kSendInput:
          if (zero_copy) {
            comm.send_view(s.peer, s.tag, input.subspan(s.src_off + done, len));
          } else {
            comm.send(s.peer, s.tag, input.subspan(s.src_off + done, len));
          }
          break;
        case StepKind::kRecv: {
          const runtime::Message m = comm.recv_msg(s.peer, s.tag, len);
          if (len != 0) {
            std::memcpy(output.data() + s.off + done, m.bytes().data(), len);
          }
          break;
        }
        case StepKind::kRecvReduce: {
          // Reduce straight out of the matched message (a pooled buffer or
          // the sender's own memory under zero-copy) — no staging copy.
          const runtime::Message m = comm.recv_msg(s.peer, s.tag, len);
          reduce_fn(op, type, output.subspan(s.off + done, len), m.bytes(),
                    len / pr.elem_size);
          break;
        }
        case StepKind::kCopyInput:
          break;  // handled above
      }
      done += len;
      if (sink != nullptr) {
        const double now_us = obs::wallclock_us();
        emit_step(*sink, rank, i, s, len, begin_us, now_us, group, link_of(s));
        begin_us = now_us;
      }
    } while (done < s.bytes);
  }
}

std::vector<std::vector<std::byte>> execute_threaded(
    const Schedule& sched, const std::vector<std::vector<std::byte>>& inputs,
    runtime::DataType type, runtime::ReduceOp op, obs::TraceSink* sink) {
  ThreadedExecOptions options;
  options.sink = sink;
  return execute_threaded(sched, inputs, type, op, options);
}

std::vector<std::vector<std::byte>> execute_threaded(
    const Schedule& sched, const std::vector<std::vector<std::byte>>& inputs,
    runtime::DataType type, runtime::ReduceOp op,
    const ThreadedExecOptions& options) {
  const CollParams& pr = sched.params;
  obs::TraceSink* sink = options.sink;
  if (inputs.size() != static_cast<std::size_t>(pr.p)) {
    throw std::invalid_argument("execute_threaded: wrong number of inputs");
  }
  for (int r = 0; r < pr.p; ++r) {
    if (inputs[static_cast<std::size_t>(r)].size() != input_bytes(pr, r)) {
      throw std::invalid_argument("execute_threaded: input size mismatch at rank " +
                                  std::to_string(r));
    }
  }

  std::vector<std::vector<std::byte>> outputs(static_cast<std::size_t>(pr.p));
  for (auto& buf : outputs) buf.resize(output_bytes(pr));

  runtime::World::run(
      pr.p,
      [&](runtime::Communicator& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        if (sched.hier) {
          execute_hierarchical(sched, comm, inputs[r], outputs[r], type, op,
                               sink, options.tuning);
        } else {
          execute_rank_program(sched, comm, inputs[r], outputs[r], type, op,
                               sink, options.tuning);
        }
      },
      options.world);
  return outputs;
}

}  // namespace gencoll::core
