#include "core/executor.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/world.hpp"

namespace gencoll::core {

namespace {

obs::SpanKind span_kind_of(StepKind kind) {
  switch (kind) {
    case StepKind::kCopyInput: return obs::SpanKind::kCopyInput;
    case StepKind::kSend: return obs::SpanKind::kSend;
    case StepKind::kSendInput: return obs::SpanKind::kSendInput;
    case StepKind::kRecv: return obs::SpanKind::kRecv;
    case StepKind::kRecvReduce: return obs::SpanKind::kRecvReduce;
  }
  return obs::SpanKind::kSend;
}

/// Emit one step's span (and message instant) after the step completed.
/// Component fields stay zero: wall-clock execution has no cost model.
void emit_step(obs::TraceSink& sink, int rank, std::size_t step, const Step& s,
               double begin_us, double end_us) {
  obs::SpanEvent ev;
  ev.kind = span_kind_of(s.kind);
  ev.rank = rank;
  ev.step = static_cast<std::int32_t>(step);
  ev.bytes = s.bytes;
  ev.begin_us = begin_us;
  ev.end_us = end_us;
  if (s.kind != StepKind::kCopyInput) {
    ev.peer = s.peer;
    ev.tag = s.tag;
  }
  if (obs::is_send(ev.kind)) ev.post_us = end_us;
  sink.span(ev);

  if (s.kind == StepKind::kCopyInput) return;
  obs::InstantEvent inst;
  inst.kind = obs::is_send(ev.kind) ? obs::InstantKind::kMessagePost
                                    : obs::InstantKind::kMessageMatch;
  inst.rank = rank;
  inst.peer = s.peer;
  inst.tag = s.tag;
  inst.bytes = s.bytes;
  inst.time_us = end_us;
  sink.instant(inst);
}

}  // namespace

void execute_rank_program(const Schedule& sched, runtime::Communicator& comm,
                          std::span<const std::byte> input,
                          std::span<std::byte> output, runtime::DataType type,
                          runtime::ReduceOp op, obs::TraceSink* sink) {
  const CollParams& pr = sched.params;
  if (comm.size() != pr.p) {
    throw std::invalid_argument("execute_rank_program: communicator size != p");
  }
  if (runtime::datatype_size(type) != pr.elem_size) {
    throw std::invalid_argument("execute_rank_program: elem_size != datatype size");
  }
  const int rank = comm.rank();
  // Keep the communicator's sink in lockstep with the executor's so
  // reliability instants (retransmit / corrupt-detected / abort) land in the
  // same trace as the step spans.
  comm.set_trace_sink(sink);
  if (input.size() < input_bytes(pr, rank)) {
    throw std::invalid_argument("execute_rank_program: input too small");
  }
  if (output.size() < output_bytes(pr)) {
    throw std::invalid_argument("execute_rank_program: output too small");
  }

  std::vector<std::byte> reduce_scratch;
  const auto& steps = sched.ranks[static_cast<std::size_t>(rank)].steps;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& s = steps[i];
    const double begin_us = sink != nullptr ? obs::wallclock_us() : 0.0;
    switch (s.kind) {
      case StepKind::kCopyInput:
        // Zero-byte copies happen for degenerate schedules; an empty span's
        // data() may be null, and memcpy's pointer args must be non-null.
        if (s.bytes != 0) {
          std::memcpy(output.data() + s.off, input.data() + s.src_off, s.bytes);
        }
        break;
      case StepKind::kSend:
        comm.send(s.peer, s.tag, output.subspan(s.off, s.bytes));
        break;
      case StepKind::kSendInput:
        comm.send(s.peer, s.tag, input.subspan(s.src_off, s.bytes));
        break;
      case StepKind::kRecv:
        comm.recv(s.peer, s.tag, output.subspan(s.off, s.bytes));
        break;
      case StepKind::kRecvReduce: {
        reduce_scratch.resize(s.bytes);
        comm.recv(s.peer, s.tag, reduce_scratch);
        runtime::apply_reduce(op, type, output.subspan(s.off, s.bytes),
                              reduce_scratch, s.bytes / pr.elem_size);
        break;
      }
    }
    if (sink != nullptr) emit_step(*sink, rank, i, s, begin_us, obs::wallclock_us());
  }
}

std::vector<std::vector<std::byte>> execute_threaded(
    const Schedule& sched, const std::vector<std::vector<std::byte>>& inputs,
    runtime::DataType type, runtime::ReduceOp op, obs::TraceSink* sink) {
  ThreadedExecOptions options;
  options.sink = sink;
  return execute_threaded(sched, inputs, type, op, options);
}

std::vector<std::vector<std::byte>> execute_threaded(
    const Schedule& sched, const std::vector<std::vector<std::byte>>& inputs,
    runtime::DataType type, runtime::ReduceOp op,
    const ThreadedExecOptions& options) {
  const CollParams& pr = sched.params;
  obs::TraceSink* sink = options.sink;
  if (inputs.size() != static_cast<std::size_t>(pr.p)) {
    throw std::invalid_argument("execute_threaded: wrong number of inputs");
  }
  for (int r = 0; r < pr.p; ++r) {
    if (inputs[static_cast<std::size_t>(r)].size() != input_bytes(pr, r)) {
      throw std::invalid_argument("execute_threaded: input size mismatch at rank " +
                                  std::to_string(r));
    }
  }

  std::vector<std::vector<std::byte>> outputs(static_cast<std::size_t>(pr.p));
  for (auto& buf : outputs) buf.resize(output_bytes(pr));

  runtime::World::run(
      pr.p,
      [&](runtime::Communicator& comm) {
        const auto r = static_cast<std::size_t>(comm.rank());
        execute_rank_program(sched, comm, inputs[r], outputs[r], type, op, sink);
      },
      options.world);
  return outputs;
}

}  // namespace gencoll::core
