#include "core/executor.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/world.hpp"

namespace gencoll::core {

void execute_rank_program(const Schedule& sched, runtime::Communicator& comm,
                          std::span<const std::byte> input,
                          std::span<std::byte> output, runtime::DataType type,
                          runtime::ReduceOp op) {
  const CollParams& pr = sched.params;
  if (comm.size() != pr.p) {
    throw std::invalid_argument("execute_rank_program: communicator size != p");
  }
  if (runtime::datatype_size(type) != pr.elem_size) {
    throw std::invalid_argument("execute_rank_program: elem_size != datatype size");
  }
  const int rank = comm.rank();
  if (input.size() < input_bytes(pr, rank)) {
    throw std::invalid_argument("execute_rank_program: input too small");
  }
  if (output.size() < output_bytes(pr)) {
    throw std::invalid_argument("execute_rank_program: output too small");
  }

  std::vector<std::byte> reduce_scratch;
  for (const Step& s : sched.ranks[static_cast<std::size_t>(rank)].steps) {
    switch (s.kind) {
      case StepKind::kCopyInput:
        std::memcpy(output.data() + s.off, input.data() + s.src_off, s.bytes);
        break;
      case StepKind::kSend:
        comm.send(s.peer, s.tag, output.subspan(s.off, s.bytes));
        break;
      case StepKind::kSendInput:
        comm.send(s.peer, s.tag, input.subspan(s.src_off, s.bytes));
        break;
      case StepKind::kRecv:
        comm.recv(s.peer, s.tag, output.subspan(s.off, s.bytes));
        break;
      case StepKind::kRecvReduce: {
        reduce_scratch.resize(s.bytes);
        comm.recv(s.peer, s.tag, reduce_scratch);
        runtime::apply_reduce(op, type, output.subspan(s.off, s.bytes),
                              reduce_scratch, s.bytes / pr.elem_size);
        break;
      }
    }
  }
}

std::vector<std::vector<std::byte>> execute_threaded(
    const Schedule& sched, const std::vector<std::vector<std::byte>>& inputs,
    runtime::DataType type, runtime::ReduceOp op) {
  const CollParams& pr = sched.params;
  if (inputs.size() != static_cast<std::size_t>(pr.p)) {
    throw std::invalid_argument("execute_threaded: wrong number of inputs");
  }
  for (int r = 0; r < pr.p; ++r) {
    if (inputs[static_cast<std::size_t>(r)].size() != input_bytes(pr, r)) {
      throw std::invalid_argument("execute_threaded: input size mismatch at rank " +
                                  std::to_string(r));
    }
  }

  std::vector<std::vector<std::byte>> outputs(static_cast<std::size_t>(pr.p));
  for (auto& buf : outputs) buf.resize(output_bytes(pr));

  runtime::World::run(pr.p, [&](runtime::Communicator& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    execute_rank_program(sched, comm, inputs[r], outputs[r], type, op);
  });
  return outputs;
}

}  // namespace gencoll::core
