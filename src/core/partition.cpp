#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace gencoll::core {

Block block_of(std::size_t count, int parts, int idx) {
  if (parts <= 0 || idx < 0 || idx >= parts) {
    throw std::invalid_argument("block_of: bad partition index");
  }
  const auto uparts = static_cast<std::size_t>(parts);
  const auto uidx = static_cast<std::size_t>(idx);
  const std::size_t base = count / uparts;
  const std::size_t rem = count % uparts;
  Block b;
  b.elem_len = base + (uidx < rem ? 1 : 0);
  b.elem_off = base * uidx + std::min(uidx, rem);
  return b;
}

Seg seg_of_blocks(std::size_t count, std::size_t elem_size, int parts, int lo, int hi) {
  if (lo > hi) throw std::invalid_argument("seg_of_blocks: lo > hi");
  if (lo == hi) return Seg{0, 0};
  const Block first = block_of(count, parts, lo);
  const Block last = block_of(count, parts, hi - 1);
  Seg s;
  s.off = first.elem_off * elem_size;
  s.len = (last.elem_off + last.elem_len - first.elem_off) * elem_size;
  return s;
}

std::vector<Seg> wrap_segs(std::size_t count, std::size_t elem_size, int parts,
                           int lo, int len) {
  if (len < 0 || len > parts) {
    throw std::invalid_argument("wrap_segs: bad length");
  }
  std::vector<Seg> out;
  if (len == 0) return out;
  lo = ((lo % parts) + parts) % parts;
  const int first_len = std::min(len, parts - lo);
  const Seg head = seg_of_blocks(count, elem_size, parts, lo, lo + first_len);
  if (head.len > 0) out.push_back(head);
  if (first_len < len) {
    const Seg tail = seg_of_blocks(count, elem_size, parts, 0, len - first_len);
    if (tail.len > 0) out.push_back(tail);
  }
  return out;
}

std::vector<Seg> merge_segs(std::vector<Seg> segs) {
  std::erase_if(segs, [](const Seg& s) { return s.len == 0; });
  std::sort(segs.begin(), segs.end(),
            [](const Seg& a, const Seg& b) { return a.off < b.off; });
  std::vector<Seg> out;
  for (const Seg& s : segs) {
    if (!out.empty() && s.off <= out.back().off + out.back().len) {
      const std::size_t end = std::max(out.back().off + out.back().len, s.off + s.len);
      out.back().len = end - out.back().off;
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace gencoll::core
