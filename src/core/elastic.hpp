// Elastic retry driver: transparently re-executes an interrupted collective
// over the survivors after a shrink recovery (DESIGN.md section 11).
//
// Under runtime::CrashPolicy::kShrink a rank death revokes the membership
// epoch instead of poisoning the World. Every survivor's blocking wait wakes
// with FaultError(kRevoked); this driver catches it, joins the survivor
// agreement (runtime/membership.hpp), adopts the new epoch's dense rank
// numbering (Communicator::apply_epoch), rebuilds the schedule for the
// shrunk p' — hierarchy repaired or flattened, radix re-fit — and retries
// the whole collective from fresh inputs. Every rebuilt schedule goes
// through registry::build_schedule / build_hierarchical_schedule and is
// therefore submitted to the installed schedule auditor: when the tests
// install the symbolic prover there, every shrunk schedule is proven
// (provenance multiset over the survivors) before the retry executes it.
//
// Completion is committed through the membership's commit rendezvous: a rank
// whose step program finishes just before a late peer crash does NOT return
// a full-p result — the rendezvous fails, and it shrinks and retries with
// the rest of the survivors, so all delivered results agree on the epoch.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/coll_params.hpp"
#include "core/executor.hpp"
#include "core/hierarchy.hpp"
#include "obs/trace.hpp"
#include "runtime/comm.hpp"
#include "runtime/datatype.hpp"
#include "runtime/reduce_op.hpp"
#include "runtime/world.hpp"

namespace gencoll::core {

/// Re-supplies one rank's input before every attempt. Called with the
/// attempt's (possibly shrunk) params and the caller's dense rank; must
/// return exactly input_bytes(params, dense_rank) bytes. ULFM semantics:
/// after a shrink the application re-shards its contribution over the
/// survivors (for p-dependent layouts like Allgather blocks); p-independent
/// ops (Bcast/Reduce/Allreduce/Scan) can simply return the original input.
using InputProvider =
    std::function<std::vector<std::byte>(const CollParams& params, int dense_rank)>;

/// What one rank's elastic execution went through.
struct ElasticReport {
  int attempts = 0;     ///< executions tried, the committed one included
  int shrinks = 0;      ///< epochs installed (recoveries survived)
  int final_p = 0;      ///< survivor count of the committing epoch
  int final_epoch = 0;  ///< epoch the result was committed in
  std::string schedule_name;         ///< committed schedule's name
  double recovery_latency_ms = 0.0;  ///< total revoke-to-retry-ready time
  std::vector<int> survivors;        ///< original ranks of the final epoch
};

/// How to build each attempt's schedule.
struct ElasticOptions {
  /// Preferred flat algorithm. Re-fit per attempt: if (alg, k) does not
  /// support the shrunk p', the driver sweeps candidate_radixes, then every
  /// algorithm registered for the op, before giving up.
  Algorithm alg = Algorithm::kKnomial;
  /// Hierarchical composition. Repaired per attempt: the original group
  /// size is retried first, then g' in {2, 4, 8} dividing p'; when no
  /// composition fits, the driver falls back to a flat schedule built from
  /// spec.inter_alg. A dead leader needs no special case — the dense remap
  /// promotes the next surviving member into the leader position.
  std::optional<HierSpec> hier;
  ExecTuning tuning;
  obs::TraceSink* sink = nullptr;
};

/// Build the schedule for one attempt's parameters following the fallback
/// chain above. Throws UnsupportedParams when nothing fits. Exposed for the
/// service layer's arm re-enumeration and for tests.
Schedule build_elastic_schedule(const ElasticOptions& options, CollParams params);

/// Run one rank of an elastic collective to commit. `params` describes the
/// ORIGINAL problem (params.p ranks, params.root an original rank); the
/// driver rescales both across shrinks. Returns the committed epoch's output
/// buffer for this rank (output_bytes of the final params). Throws
/// FaultError(kRankDeath) when this rank itself dies or is declared dead,
/// and FaultError(kRetriesExhausted) past the configured recovery cap.
std::vector<std::byte> execute_rank_elastic(runtime::Communicator& comm,
                                            const CollParams& params,
                                            runtime::DataType type,
                                            runtime::ReduceOp op,
                                            const ElasticOptions& options,
                                            const InputProvider& provider,
                                            ElasticReport* report = nullptr);

/// Threaded front end: spawn params.p ranks under `world_options` (which
/// should resolve to CrashPolicy::kShrink — under kAbort this degenerates to
/// plain fail-fast execution) and run every rank through
/// execute_rank_elastic. Returns outputs indexed by ORIGINAL rank; dead
/// ranks' entries are empty. `reports`, when non-null, receives one entry
/// per original rank (dead ranks keep default-constructed reports).
std::vector<std::vector<std::byte>> execute_threaded_elastic(
    const CollParams& params, runtime::DataType type, runtime::ReduceOp op,
    const ElasticOptions& options, const InputProvider& provider,
    const runtime::WorldOptions& world_options,
    std::vector<ElasticReport>* reports = nullptr);

}  // namespace gencoll::core
