// Observability event vocabulary shared by both executors.
//
// Every schedule execution — threaded (src/core/executor) or simulated
// (src/netsim/simulator) — can emit the same two event shapes into a
// TraceSink: *spans* (one per schedule step, covering the step's occupancy
// of its rank's timeline) and *instants* (message post / match points).
// Downstream consumers never care which executor produced the stream:
// exporters (obs/exporters.hpp) render either into Chrome trace JSON or
// CSV, the metrics aggregator (obs/metrics.hpp) folds either into a
// CollectiveMetrics summary, and the critical-path analyzer
// (obs/critical_path.hpp) walks the simulator's component-annotated stream
// to attribute the makespan.
//
// Timestamps are microseconds (double). The simulator emits its virtual
// clock (starts at 0); the threaded executor emits wallclock_us() (a
// steady-clock reading with an arbitrary epoch) — exporters normalize to
// the earliest event, so the two conventions coexist.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gencoll::obs {

/// Mirrors core::StepKind, defined independently so obs stays the bottom
/// layer (core and netsim both link against obs, never the reverse).
enum class SpanKind {
  kCopyInput,   ///< local input -> output staging copy
  kSend,        ///< post a message from the output buffer
  kSendInput,   ///< post a message from the input buffer
  kRecv,        ///< blocking receive
  kRecvReduce,  ///< blocking receive + element-wise reduction
};

enum class InstantKind {
  kMessagePost,      ///< sender handed the message to the transport
  kMessageMatch,     ///< receiver matched/consumed the message
  // Reliability events (src/fault/): emitted by the runtime's reliable
  // transport, always on the emitting rank's lane (peer = the other end).
  kRetransmit,       ///< sender re-posted a message (lost/late/NACKed ack)
  kCorruptDetected,  ///< checksum mismatch detected; message discarded
  kAbort,            ///< this rank raised the World abort poison
  // Online-selection events (src/service/): emitted at decision instants by
  // the adaptive selection layer. `rank` carries the tenant id (the
  // recorder's lanes are per-tenant for selection streams), `tag` the arm
  // index within the decision's arm set, `bytes` the request payload.
  kSelection,        ///< the selector committed an arm for one request
  kArmSwitch,        ///< the committed arm differs from the previous one
                     ///< for the same (op, size-class, tenant) key
  // Elastic shrink-recovery events (src/fault/recovery.hpp, core/elastic.hpp):
  // the revoke -> agree -> shrink lifecycle of one membership epoch. `tag`
  // carries the revoked/installed epoch number.
  kRevoke,           ///< a rank revoked the current epoch (crash detected)
  kAgree,            ///< this rank joined the survivor agreement
  kShrink,           ///< new epoch installed; `peer` = surviving rank count
};

/// Which fabric a message used. The simulator knows (machine topology); the
/// threaded executor does not and reports kUnknown.
enum class LinkClass { kUnknown, kIntra, kInter };

/// One schedule step's occupancy of its rank's timeline, plus — for the
/// simulator — the message lifecycle and the cost-component decomposition
/// the critical-path analyzer consumes. The threaded executor fills only
/// the identity/timing fields and leaves components zero (it has no model).
struct SpanEvent {
  SpanKind kind = SpanKind::kSend;
  int rank = 0;
  int peer = -1;                 ///< communication steps only
  int tag = 0;
  std::int32_t step = -1;        ///< index in the rank's step program
  std::int32_t match_step = -1;  ///< matching step index in the peer's
                                 ///< program (simulator fills; -1 unknown)
  std::size_t bytes = 0;
  LinkClass link = LinkClass::kUnknown;
  int group = -1;  ///< hierarchical group of `rank` (core/hierarchy.hpp);
                   ///< -1 when the schedule has no grouping

  double begin_us = 0.0;  ///< rank reached the step
  double end_us = 0.0;    ///< step completed on the rank's timeline

  // Message lifecycle (send kinds; simulator only). start_us - post_us is
  // the time the message queued for a free port/link.
  double post_us = 0.0;
  double start_us = 0.0;
  double arrival_us = 0.0;  ///< send kinds: delivery time; recv kinds: the
                            ///< matched message's arrival (wait analysis)

  // Component decomposition, filled by the simulator so analyzers need no
  // machine model. Invariants the simulator maintains (jitter included):
  //   send span:  end - begin == overhead_us, and
  //               arrival - post == queue_us + port_us + beta_us + alpha_us
  //   recv span:  end - max(begin, arrival) == overhead_us + gamma_us
  //   copy span:  end - begin == overhead_us
  double alpha_us = 0.0;     ///< wire latency
  double beta_us = 0.0;      ///< serialization (bytes x link beta)
  double gamma_us = 0.0;     ///< reduction compute at the receiver
  double overhead_us = 0.0;  ///< CPU posting/completion cost (copy time for
                             ///< kCopyInput)
  double port_us = 0.0;      ///< NIC per-message processing occupancy
  double queue_us = 0.0;     ///< waiting for a free port/link
};

struct InstantEvent {
  InstantKind kind = InstantKind::kMessagePost;
  int rank = 0;
  int peer = -1;
  int tag = 0;
  std::size_t bytes = 0;
  double time_us = 0.0;
};

/// Abstract consumer of trace events. Thread-safety contract: implementations
/// must tolerate concurrent calls *for distinct ranks* (the threaded executor
/// emits from one thread per rank); calls for the same rank are always
/// sequential.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void span(const SpanEvent& event) = 0;
  virtual void instant(const InstantEvent& event) = 0;
};

const char* span_kind_name(SpanKind kind);
const char* instant_kind_name(InstantKind kind);
const char* link_class_name(LinkClass link);

/// True for kSend/kSendInput.
bool is_send(SpanKind kind);
/// True for kRecv/kRecvReduce.
bool is_recv(SpanKind kind);

/// Steady-clock reading in microseconds (arbitrary epoch); the threaded
/// executor's time source.
double wallclock_us();

}  // namespace gencoll::obs
