// In-memory TraceSink with one event lane per rank.
//
// The "lock-free-ish" design: the lane array is sized up front, each lane is
// cache-line padded, and every emitter appends only to its own rank's lane —
// so the threaded executor's per-rank threads record without any atomics or
// locks on the hot path, and the (single-threaded) simulator pays nothing
// extra. The only synchronization requirement is external: construct/reset
// before the run, read after the run's threads have joined (World::run's
// join provides the happens-before edge).
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.hpp"

namespace gencoll::obs {

class TraceRecorder final : public TraceSink {
 public:
  /// A recorder for `ranks` lanes; events for a rank outside [0, ranks)
  /// throw std::out_of_range (malformed-emitter guard).
  explicit TraceRecorder(int ranks);

  /// Drop all events and resize to `ranks` lanes. Not thread-safe.
  void reset(int ranks);

  void span(const SpanEvent& event) override;
  void instant(const InstantEvent& event) override;

  [[nodiscard]] int ranks() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] const std::vector<SpanEvent>& spans(int rank) const;
  [[nodiscard]] const std::vector<InstantEvent>& instants(int rank) const;
  [[nodiscard]] std::size_t total_spans() const;
  [[nodiscard]] std::size_t total_instants() const;

  /// Earliest timestamp across all events (0 when empty) — exporters use it
  /// to normalize wall-clock streams to t=0.
  [[nodiscard]] double min_time_us() const;
  /// Latest span end across all events (0 when empty).
  [[nodiscard]] double max_time_us() const;

 private:
  // Padded so rank threads appending concurrently never share a line.
  struct alignas(64) Lane {
    std::vector<SpanEvent> spans;
    std::vector<InstantEvent> instants;
  };

  [[nodiscard]] Lane& lane_for(int rank);

  std::vector<Lane> lanes_;
};

}  // namespace gencoll::obs
