#include "obs/trace.hpp"

#include <chrono>

namespace gencoll::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kCopyInput: return "CopyInput";
    case SpanKind::kSend: return "Send";
    case SpanKind::kSendInput: return "SendInput";
    case SpanKind::kRecv: return "Recv";
    case SpanKind::kRecvReduce: return "RecvReduce";
  }
  return "?";
}

const char* instant_kind_name(InstantKind kind) {
  switch (kind) {
    case InstantKind::kMessagePost: return "MsgPost";
    case InstantKind::kMessageMatch: return "MsgMatch";
    case InstantKind::kRetransmit: return "Retransmit";
    case InstantKind::kCorruptDetected: return "CorruptDetected";
    case InstantKind::kAbort: return "Abort";
    case InstantKind::kSelection: return "Selection";
    case InstantKind::kArmSwitch: return "ArmSwitch";
    case InstantKind::kRevoke: return "Revoke";
    case InstantKind::kAgree: return "Agree";
    case InstantKind::kShrink: return "Shrink";
  }
  return "?";
}

const char* link_class_name(LinkClass link) {
  switch (link) {
    case LinkClass::kUnknown: return "unknown";
    case LinkClass::kIntra: return "intra";
    case LinkClass::kInter: return "inter";
  }
  return "?";
}

bool is_send(SpanKind kind) {
  return kind == SpanKind::kSend || kind == SpanKind::kSendInput;
}

bool is_recv(SpanKind kind) {
  return kind == SpanKind::kRecv || kind == SpanKind::kRecvReduce;
}

double wallclock_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::micro>(now).count();
}

}  // namespace gencoll::obs
