#include "obs/critical_path.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace gencoll::obs {

namespace {

/// Spans of one rank indexed by step number (simulator streams emit exactly
/// one span per step, in order; we re-index defensively by the step field).
class StepIndex {
 public:
  explicit StepIndex(const TraceRecorder& rec) {
    by_step_.resize(static_cast<std::size_t>(rec.ranks()));
    for (int r = 0; r < rec.ranks(); ++r) {
      auto& lane = by_step_[static_cast<std::size_t>(r)];
      const auto& spans = rec.spans(r);
      lane.assign(spans.size(), nullptr);
      for (const SpanEvent& ev : spans) {
        if (ev.step < 0 || static_cast<std::size_t>(ev.step) >= lane.size()) {
          throw std::logic_error("critical path: span step index out of range");
        }
        lane[static_cast<std::size_t>(ev.step)] = &ev;
      }
      for (const SpanEvent* ev : lane) {
        if (ev == nullptr) {
          throw std::logic_error("critical path: rank stream is missing a step span");
        }
      }
    }
  }

  [[nodiscard]] const SpanEvent* at(int rank, std::int32_t step) const {
    if (rank < 0 || rank >= static_cast<int>(by_step_.size())) return nullptr;
    const auto& lane = by_step_[static_cast<std::size_t>(rank)];
    if (step < 0 || static_cast<std::size_t>(step) >= lane.size()) return nullptr;
    return lane[static_cast<std::size_t>(step)];
  }

 private:
  std::vector<std::vector<const SpanEvent*>> by_step_;
};

}  // namespace

CriticalPath analyze_critical_path(const TraceRecorder& recorder) {
  CriticalPath cp;
  const StepIndex index(recorder);

  // The makespan is the latest span end; its rank anchors the walk.
  const SpanEvent* cur = nullptr;
  for (int r = 0; r < recorder.ranks(); ++r) {
    const auto& spans = recorder.spans(r);
    if (spans.empty()) continue;
    const SpanEvent& last = spans.back();
    if (cur == nullptr || last.end_us > cur->end_us) cur = &last;
  }
  if (cur == nullptr) return cp;
  cp.total_us = cur->end_us;
  cp.end_rank = cur->rank;

  while (cur != nullptr) {
    ++cp.steps;
    if (is_recv(cur->kind)) {
      cp.overhead_us += cur->overhead_us;
      cp.gamma_us += cur->gamma_us;
      if (cur->arrival_us > cur->begin_us) {
        // The rank waited for this message: cross it to the sender. The
        // message interval [post, arrival] decomposes into queueing, NIC
        // occupancy (port + serialization), and wire latency.
        const SpanEvent* send = index.at(cur->peer, cur->match_step);
        if (send == nullptr || !is_send(send->kind)) {
          throw std::logic_error(
              "critical path: waited receive has no matched send span "
              "(stream not produced by the simulator?)");
        }
        cp.queue_us += send->queue_us;
        cp.overhead_us += send->port_us;
        cp.beta_us += send->beta_us;
        cp.alpha_us += send->alpha_us;
        ++cp.hops;
        cur = send;  // next iteration attributes the send's posting overhead
        continue;
      }
    } else {
      // Send posting / input copy: the span's rank-clock occupancy.
      cp.overhead_us += cur->overhead_us;
    }
    cur = cur->step > 0 ? index.at(cur->rank, cur->step - 1) : nullptr;
  }
  return cp;
}

util::Table critical_path_table(const CriticalPath& cp) {
  util::Table t({"component", "us", "share"});
  const double total = cp.total_us > 0.0 ? cp.total_us : 1.0;
  const auto row = [&](const char* name, double us) {
    t.add_row({name, util::fmt(us), util::fmt(100.0 * us / total, 1) + "%"});
  };
  row("alpha (wire latency)", cp.alpha_us);
  row("beta (serialization)", cp.beta_us);
  row("gamma (reduction)", cp.gamma_us);
  row("overhead (cpu+nic+copy)", cp.overhead_us);
  row("queueing (ports/links)", cp.queue_us);
  row("attributed total", cp.attributed_us());
  row("makespan", cp.total_us);
  t.add_row({"path hops / steps",
             std::to_string(cp.hops) + " / " + std::to_string(cp.steps), ""});
  t.add_row({"finishing rank", std::to_string(cp.end_rank), ""});
  return t;
}

}  // namespace gencoll::obs
