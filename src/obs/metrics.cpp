#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

namespace gencoll::obs {

namespace {

/// Max simultaneous [post, start) intervals for one rank's sends. Departures
/// at time t are processed before arrivals at t, so back-to-back messages
/// don't inflate the depth.
std::size_t max_queue_depth(const std::vector<SpanEvent>& spans) {
  struct Edge {
    double time;
    int delta;  // +1 post, -1 start
  };
  std::vector<Edge> edges;
  for (const SpanEvent& ev : spans) {
    if (!is_send(ev.kind) || ev.start_us <= ev.post_us) continue;
    edges.push_back({ev.post_us, +1});
    edges.push_back({ev.start_us, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.delta < b.delta;
  });
  std::size_t depth = 0;
  std::size_t max_depth = 0;
  for (const Edge& e : edges) {
    if (e.delta > 0) {
      max_depth = std::max(max_depth, ++depth);
    } else {
      --depth;
    }
  }
  return max_depth;
}

}  // namespace

CollectiveMetrics collect_metrics(const TraceRecorder& recorder) {
  CollectiveMetrics m;
  m.per_rank.resize(static_cast<std::size_t>(recorder.ranks()));

  double t_min = 0.0;
  double t_max = 0.0;
  bool seen = false;
  for (int r = 0; r < recorder.ranks(); ++r) {
    RankBreakdown& rb = m.per_rank[static_cast<std::size_t>(r)];
    std::size_t sends = 0;
    std::size_t recvs = 0;
    std::int32_t last_step = -1;
    for (const SpanEvent& ev : recorder.spans(r)) {
      // Per-rank spans arrive in execution order, so a repeated step index
      // means the executor pipelined that step into multiple segments.
      if (ev.step >= 0 && ev.step == last_step) ++m.pipelined_segments;
      last_step = ev.step;
      if (!seen || ev.begin_us < t_min) t_min = ev.begin_us;
      if (!seen || ev.end_us > t_max) t_max = ev.end_us;
      seen = true;
      const double dur = std::max(0.0, ev.end_us - ev.begin_us);
      switch (ev.kind) {
        case SpanKind::kCopyInput:
          rb.copy_us += dur;
          break;
        case SpanKind::kSend:
        case SpanKind::kSendInput: {
          ++sends;
          ++m.messages;
          m.bytes += ev.bytes;
          if (ev.link == LinkClass::kIntra) {
            ++m.messages_intra;
            m.bytes_intra += ev.bytes;
          } else if (ev.link == LinkClass::kInter) {
            ++m.messages_inter;
            m.bytes_inter += ev.bytes;
          }
          m.queue_us += ev.queue_us;
          rb.send_us += dur;
          break;
        }
        case SpanKind::kRecv:
        case SpanKind::kRecvReduce: {
          ++recvs;
          // Simulator spans decompose exactly into wait + overhead + gamma;
          // threaded spans have zero components, so the whole blocking call
          // counts as wait.
          const double busy = ev.overhead_us + ev.gamma_us;
          rb.recv_us += std::min(dur, ev.overhead_us);
          rb.reduce_us += std::min(std::max(0.0, dur - ev.overhead_us), ev.gamma_us);
          rb.wait_us += std::max(0.0, dur - busy);
          break;
        }
      }
    }
    for (const InstantEvent& ev : recorder.instants(r)) {
      switch (ev.kind) {
        case InstantKind::kRetransmit: ++m.retransmits; break;
        case InstantKind::kCorruptDetected: ++m.corruptions_detected; break;
        case InstantKind::kAbort: ++m.aborts; break;
        case InstantKind::kSelection: ++m.selections; break;
        case InstantKind::kArmSwitch: ++m.arm_switches; break;
        case InstantKind::kRevoke: ++m.revokes; break;
        case InstantKind::kAgree: ++m.agreements; break;
        case InstantKind::kShrink: ++m.shrinks; break;
        case InstantKind::kMessagePost:
        case InstantKind::kMessageMatch:
          break;
      }
    }
    m.rounds = std::max(m.rounds, std::max(sends, recvs));
    m.max_port_queue_depth =
        std::max(m.max_port_queue_depth, max_queue_depth(recorder.spans(r)));
  }
  m.makespan_us = seen ? t_max - t_min : 0.0;
  return m;
}

util::Table metrics_summary_table(const CollectiveMetrics& m) {
  util::Table t({"metric", "value"});
  t.add_row({"messages", std::to_string(m.messages)});
  t.add_row({"messages intra/inter",
             std::to_string(m.messages_intra) + " / " + std::to_string(m.messages_inter)});
  t.add_row({"bytes", std::to_string(m.bytes)});
  t.add_row({"bytes intra/inter",
             std::to_string(m.bytes_intra) + " / " + std::to_string(m.bytes_inter)});
  t.add_row({"rounds (comm depth)", std::to_string(m.rounds)});
  t.add_row({"pipelined segments", std::to_string(m.pipelined_segments)});
  t.add_row({"max port queue depth", std::to_string(m.max_port_queue_depth)});
  t.add_row({"port/link queue total (us)", util::fmt(m.queue_us)});
  t.add_row({"retransmits", std::to_string(m.retransmits)});
  t.add_row({"corruptions detected", std::to_string(m.corruptions_detected)});
  t.add_row({"aborts", std::to_string(m.aborts)});
  t.add_row({"selections / arm switches",
             std::to_string(m.selections) + " / " + std::to_string(m.arm_switches)});
  t.add_row({"revokes / agreements / shrinks",
             std::to_string(m.revokes) + " / " + std::to_string(m.agreements) +
                 " / " + std::to_string(m.shrinks)});
  t.add_row({"makespan (us)", util::fmt(m.makespan_us)});
  return t;
}

util::Table metrics_rank_table(const CollectiveMetrics& m) {
  util::Table t({"rank", "send_us", "recv_us", "reduce_us", "wait_us", "copy_us"});
  for (std::size_t r = 0; r < m.per_rank.size(); ++r) {
    const RankBreakdown& rb = m.per_rank[r];
    t.add_row({std::to_string(r), util::fmt(rb.send_us), util::fmt(rb.recv_us),
               util::fmt(rb.reduce_us), util::fmt(rb.wait_us), util::fmt(rb.copy_us)});
  }
  return t;
}

}  // namespace gencoll::obs
