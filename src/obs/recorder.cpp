#include "obs/recorder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace gencoll::obs {

TraceRecorder::TraceRecorder(int ranks) { reset(ranks); }

void TraceRecorder::reset(int ranks) {
  if (ranks < 0) throw std::invalid_argument("TraceRecorder: negative rank count");
  lanes_.clear();
  lanes_.resize(static_cast<std::size_t>(ranks));
}

TraceRecorder::Lane& TraceRecorder::lane_for(int rank) {
  if (rank < 0 || rank >= ranks()) {
    throw std::out_of_range("TraceRecorder: event for rank " + std::to_string(rank) +
                            " outside [0, " + std::to_string(ranks()) + ")");
  }
  return lanes_[static_cast<std::size_t>(rank)];
}

void TraceRecorder::span(const SpanEvent& event) {
  lane_for(event.rank).spans.push_back(event);
}

void TraceRecorder::instant(const InstantEvent& event) {
  lane_for(event.rank).instants.push_back(event);
}

const std::vector<SpanEvent>& TraceRecorder::spans(int rank) const {
  return const_cast<TraceRecorder*>(this)->lane_for(rank).spans;
}

const std::vector<InstantEvent>& TraceRecorder::instants(int rank) const {
  return const_cast<TraceRecorder*>(this)->lane_for(rank).instants;
}

std::size_t TraceRecorder::total_spans() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.spans.size();
  return n;
}

std::size_t TraceRecorder::total_instants() const {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.instants.size();
  return n;
}

double TraceRecorder::min_time_us() const {
  double t = 0.0;
  bool seen = false;
  for (const Lane& lane : lanes_) {
    for (const SpanEvent& ev : lane.spans) {
      if (!seen || ev.begin_us < t) t = ev.begin_us;
      seen = true;
    }
    for (const InstantEvent& ev : lane.instants) {
      if (!seen || ev.time_us < t) t = ev.time_us;
      seen = true;
    }
  }
  return t;
}

double TraceRecorder::max_time_us() const {
  double t = 0.0;
  bool seen = false;
  for (const Lane& lane : lanes_) {
    for (const SpanEvent& ev : lane.spans) {
      if (!seen || ev.end_us > t) t = ev.end_us;
      seen = true;
    }
    for (const InstantEvent& ev : lane.instants) {
      if (!seen || ev.time_us > t) t = ev.time_us;
      seen = true;
    }
  }
  return t;
}

}  // namespace gencoll::obs
