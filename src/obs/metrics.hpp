// Per-collective metrics aggregated from a trace stream.
//
// collect_metrics() folds a recorded run (either executor) into counts and
// per-rank time breakdowns. The intra/inter splits are populated whenever the
// stream carries topology: always for simulator streams, and for threaded
// runs of hierarchical schedules (core/hierarchy.hpp), whose executor
// classifies each step as intra- or inter-group. Flat threaded runs report
// LinkClass::kUnknown and land in neither split; totals are always exact.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace gencoll::obs {

/// How one rank's timeline divides between activities, in microseconds.
/// For simulator streams the split is model-exact (components); for the
/// threaded executor, send/copy are measured span durations and blocking
/// receives count as wait (their CPU cost is not separable without a model).
struct RankBreakdown {
  double send_us = 0.0;    ///< posting sends
  double recv_us = 0.0;    ///< completing receives
  double reduce_us = 0.0;  ///< reduction compute
  double wait_us = 0.0;    ///< blocked waiting for a message
  double copy_us = 0.0;    ///< CopyInput staging
};

struct CollectiveMetrics {
  std::size_t messages = 0;
  std::size_t messages_intra = 0;  ///< streams with topology (see file comment)
  std::size_t messages_inter = 0;
  std::size_t bytes = 0;  ///< payload bytes over all messages
  std::size_t bytes_intra = 0;
  std::size_t bytes_inter = 0;
  /// Communication depth: max over ranks of max(send count, recv count) —
  /// the number of serialized same-direction network operations on the
  /// busiest rank (2(p-1) for a ring allreduce; (k-1)*ceil(log_k p) at a
  /// k-nomial bcast root, the injection serialization of paper §III).
  std::size_t rounds = 0;
  /// Extra spans emitted by segment-pipelined steps (threaded executor): a
  /// step split into S segments contributes S-1 here. Zero when pipelining
  /// never engaged and for simulator streams.
  std::size_t pipelined_segments = 0;
  /// Max number of messages simultaneously queued (posted, not yet on the
  /// wire) by any single rank — NIC-port pressure. Simulator streams only.
  std::size_t max_port_queue_depth = 0;
  double makespan_us = 0.0;  ///< last span end - first span begin
  double queue_us = 0.0;     ///< total port/link queueing over all messages
  // Reliability events (threaded executor with src/fault/ enabled; always
  // zero for simulator streams, which model the happy path).
  std::size_t retransmits = 0;
  std::size_t corruptions_detected = 0;
  std::size_t aborts = 0;
  // Online-selection events (src/service/ streams; zero for executor-only
  // streams). selections counts decision instants, arm_switches the subset
  // where the committed arm changed for its (op, size-class, tenant) key.
  std::size_t selections = 0;
  std::size_t arm_switches = 0;
  // Elastic shrink-recovery events (CrashPolicy::kShrink runs; zero
  // otherwise). revokes counts epoch revocations observed, agreements the
  // survivor-agreement joins, shrinks the epoch installs.
  std::size_t revokes = 0;
  std::size_t agreements = 0;
  std::size_t shrinks = 0;
  std::vector<RankBreakdown> per_rank;
};

CollectiveMetrics collect_metrics(const TraceRecorder& recorder);

/// Summary + per-rank breakdown rendered via util/table.
util::Table metrics_summary_table(const CollectiveMetrics& m);
util::Table metrics_rank_table(const CollectiveMetrics& m);

}  // namespace gencoll::obs
