// Trace exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) and
// flat CSV.
//
// Chrome layout: each recorded *run* (one executor pass over a schedule)
// becomes one pid, each rank one tid within it, each schedule step one
// complete ("X") event and each post/match instant one instant ("i") event.
// Timestamps are normalized so the earliest event across all runs lands at
// t=0, which makes the simulator's virtual clock and the threaded
// executor's wall clock coexist in one file.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/recorder.hpp"

namespace gencoll::obs {

/// One executor pass bound to a display name ("simulated: kring(k=8)", ...).
/// The recorder must outlive the export call.
struct TraceRun {
  std::string name;
  const TraceRecorder* recorder = nullptr;
};

/// Write `runs` as one Chrome trace-event JSON document (object form with a
/// "traceEvents" array; valid JSON, no trailing commas). Null recorders are
/// skipped.
void write_chrome_trace(std::ostream& os, std::span<const TraceRun> runs);

/// Convenience single-run overload.
void write_chrome_trace(std::ostream& os, const std::string& name,
                        const TraceRecorder& recorder);

/// Flat CSV of every span (header + one row per event), rank-major in step
/// order. Timestamps are normalized to the recorder's earliest event.
void write_trace_csv(std::ostream& os, const TraceRecorder& recorder);

}  // namespace gencoll::obs
