#include "obs/exporters.hpp"

#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace gencoll::obs {

namespace {

/// JSON string escaping for the small set of characters names can contain.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Emitter that tracks whether a comma is needed before the next element.
class EventArray {
 public:
  explicit EventArray(std::ostream& os) : os_(os) {}

  std::ostream& next() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

/// The hierarchy group a rank's stream belongs to, or -1 for flat streams
/// (executor.cpp stamps every span of a hierarchical run with its group).
int rank_group(const TraceRecorder& rec, int r) {
  for (const SpanEvent& ev : rec.spans(r)) {
    if (ev.group >= 0) return ev.group;
  }
  return -1;
}

void emit_metadata(EventArray& out, int pid, const std::string& name,
                   const TraceRecorder& rec) {
  out.next() << "  {\"ph\":\"M\",\"pid\":" << pid
             << ",\"name\":\"process_name\",\"args\":{\"name\":\""
             << json_escape(name) << "\"}}";
  for (int r = 0; r < rec.ranks(); ++r) {
    const int group = rank_group(rec, r);
    std::ostream& os = out.next();
    os << "  {\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << r
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << r;
    if (group >= 0) os << " (group " << group << ")";
    os << "\"}}";
    if (group >= 0) {
      // Lane-sort hierarchical runs by group, then rank within the group, so
      // each shared-segment clique renders as one contiguous band.
      out.next() << "  {\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << r
                 << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
                 << (group * 65536 + r) << "}}";
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, std::span<const TraceRun> runs) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  EventArray out(os);
  int pid = 0;
  for (const TraceRun& run : runs) {
    if (run.recorder == nullptr) continue;
    const TraceRecorder& rec = *run.recorder;
    ++pid;
    // Each run is normalized to its own earliest event: the simulator's
    // virtual clock and the threaded executor's wall clock would otherwise
    // sit an arbitrary epoch apart in one file.
    const double run_t0 = rec.min_time_us();
    emit_metadata(out, pid, run.name, rec);
    for (int r = 0; r < rec.ranks(); ++r) {
      for (const SpanEvent& ev : rec.spans(r)) {
        const double dur = ev.end_us - ev.begin_us;
        out.next() << "  {\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << ev.rank
                   << ",\"ts\":" << util::fmt(ev.begin_us - run_t0, 3)
                   << ",\"dur\":" << util::fmt(dur < 0.0 ? 0.0 : dur, 3)
                   << ",\"cat\":\"step\",\"name\":\"" << span_kind_name(ev.kind)
                   << "\",\"args\":{\"step\":" << ev.step
                   << ",\"peer\":" << ev.peer << ",\"tag\":" << ev.tag
                   << ",\"bytes\":" << ev.bytes << ",\"group\":" << ev.group
                   << ",\"link\":\"" << link_class_name(ev.link)
                   << "\",\"queue_us\":"
                   << util::fmt(ev.queue_us, 3) << ",\"arrival_us\":"
                   << util::fmt(ev.arrival_us - run_t0, 3) << "}}";
      }
      for (const InstantEvent& ev : rec.instants(r)) {
        out.next() << "  {\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << ev.rank
                   << ",\"ts\":" << util::fmt(ev.time_us - run_t0, 3)
                   << ",\"s\":\"t\",\"cat\":\"msg\",\"name\":\""
                   << instant_kind_name(ev.kind) << "\",\"args\":{\"peer\":"
                   << ev.peer << ",\"tag\":" << ev.tag << ",\"bytes\":"
                   << ev.bytes << "}}";
      }
    }
  }
  os << "\n]}\n";
}

void write_chrome_trace(std::ostream& os, const std::string& name,
                        const TraceRecorder& recorder) {
  const TraceRun run{name, &recorder};
  write_chrome_trace(os, std::span<const TraceRun>(&run, 1));
}

void write_trace_csv(std::ostream& os, const TraceRecorder& recorder) {
  const double t0 = recorder.min_time_us();
  os << "rank,step,kind,peer,tag,bytes,group,link,begin_us,end_us,post_us,"
        "start_us,arrival_us,queue_us\n";
  for (int r = 0; r < recorder.ranks(); ++r) {
    for (const SpanEvent& ev : recorder.spans(r)) {
      os << ev.rank << ',' << ev.step << ',' << span_kind_name(ev.kind) << ','
         << ev.peer << ',' << ev.tag << ',' << ev.bytes << ',' << ev.group
         << ',' << link_class_name(ev.link) << ',' << util::fmt(ev.begin_us - t0, 3)
         << ',' << util::fmt(ev.end_us - t0, 3) << ','
         << util::fmt(is_send(ev.kind) ? ev.post_us - t0 : 0.0, 3) << ','
         << util::fmt(is_send(ev.kind) ? ev.start_us - t0 : 0.0, 3) << ','
         << util::fmt(ev.arrival_us > 0.0 ? ev.arrival_us - t0 : 0.0, 3) << ','
         << util::fmt(ev.queue_us, 3) << '\n';
    }
  }
}

}  // namespace gencoll::obs
