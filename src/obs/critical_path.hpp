// Critical-path analysis of a simulated run.
//
// Walks the event graph backwards from the last-finishing rank: through that
// rank's step spans, and — whenever a receive waited on a message — across
// the message (queue, NIC occupancy, wire latency) to the sender's timeline,
// recursively to t=0. Because the simulator records each step's exact cost
// components (obs/trace.hpp invariants), the walk partitions the entire
// [0, makespan] interval: alpha + beta + gamma + overhead + queue == total
// up to floating-point rounding. This is the tool that answers the paper's
// core question — *why* a radix wins: a serialization-bound run shows up as
// overhead/beta on the root's injections, a port-bound run as queue, a
// latency-bound run as alpha x rounds.
//
// Requires a simulator-produced stream (component fields filled, every step
// spanned, match_step set). Threaded-executor streams have no components;
// analyzing one yields total > 0 with the gap reported in `unattributed`.
#pragma once

#include <cstddef>

#include "obs/recorder.hpp"
#include "util/table.hpp"

namespace gencoll::obs {

struct CriticalPath {
  double total_us = 0.0;     ///< makespan (== SimResult::time_us)
  double alpha_us = 0.0;     ///< wire latency on the path
  double beta_us = 0.0;      ///< serialization on the path
  double gamma_us = 0.0;     ///< reduction compute on the path
  double overhead_us = 0.0;  ///< CPU send/recv posting, NIC per-message
                             ///< processing, and input copies
  double queue_us = 0.0;     ///< port/link queueing on the path
  std::size_t hops = 0;      ///< messages the path crosses ranks through
  std::size_t steps = 0;     ///< spans visited
  int end_rank = -1;         ///< rank whose finish defines the makespan

  [[nodiscard]] double attributed_us() const {
    return alpha_us + beta_us + gamma_us + overhead_us + queue_us;
  }
  /// total - attributed: ~0 (rounding only) for simulator streams.
  [[nodiscard]] double unattributed_us() const { return total_us - attributed_us(); }
};

CriticalPath analyze_critical_path(const TraceRecorder& recorder);

/// Component table (value + share of makespan) via util/table.
util::Table critical_path_table(const CriticalPath& cp);

}  // namespace gencoll::obs
